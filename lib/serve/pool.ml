open Ccv_common
open Ccv_migrate

type config = {
  domains : int;
  shards : int;
  batch : int;
  canary_seed : int;
  tolerate_reordering : bool;
  use_plan_cache : bool;
  fail_request : int option;
  epoch_serving : bool;
  epoch_batch : int;
  epoch_lag : int;
  steal : bool;
  split_threshold : int;
  live_migration : bool;
  backfill_batch : int;
  backfill_lag : int;
  fail_backfill : (int * int) option;
  fingerprint_replicas : bool;
  cost_based_plans : bool;
  stats_every : int;
  drift_threshold : float;
}

let default_config =
  { domains = 1;
    shards = 4;
    batch = 16;
    canary_seed = 0xC0FFEE;
    tolerate_reordering = true;
    use_plan_cache = true;
    fail_request = None;
    epoch_serving = true;
    epoch_batch = 16;
    epoch_lag = 2;
    steal = true;
    split_threshold = 0;
    live_migration = false;
    backfill_batch = 64;
    backfill_lag = 1;
    fail_backfill = None;
    fingerprint_replicas = false;
    cost_based_plans = false;
    stats_every = 0;
    drift_threshold = 0.5;
  }

type divergence = {
  div_request : int;
  div_program : string;
  div_phase : string;
  div_shard : int;
  div_epoch : int;
  div_seq : int;
  detail : string;
}

(* Per-slot scheduler activity under work stealing: how many sub-rows
   the slot executed, how many of its claims were steals, and how many
   of the executed sub-rows were fragments of a split row. *)
type slot_steal = { sub_rows_run : int; stolen : int; split_frags : int }

type report = {
  outcomes : Shadow.outcome list;
  transitions : Cutover.transition list;
  divergences : divergence list;
  final_phase : Cutover.phase;
  status : Cutover.status;
  metrics : Metrics.t;
  plan_stats : Ccv_plan.Plan_cache.stats;
  served : int;
  unserved : int;
  domains : int;
  epoch_serving : bool;
  pool_idle_s : float;
  worker_idle_s : float list;
  steal_wait_s : float list;
  steal_stats : slot_steal list option;
  index_advice : string list;
  prepare_s : float;
  wall_s : float;
  migration : Migrate.summary option;
  replica_fingerprint : string option;
}

(* A worker domain never lets an exception escape into the pool — it
   would otherwise strand the coordinator.  The fault is caught next to
   the failing request and carried back as a value; [run] surfaces it
   as [Error] naming the shard and request. *)
type fault = { at_shard : int; at_request : int; fault_detail : string }

let take n l =
  let rec go acc n l =
    match n, l with
    | 0, _ | _, [] -> (List.rev acc, l)
    | n, x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

let chunks n l =
  let rec go acc l =
    match l with
    | [] -> List.rev acc
    | _ ->
        let c, rest = take n l in
        go (c :: acc) rest
  in
  go [] l

let clock () = Unix.gettimeofday ()

(* Replica preparation is embarrassingly parallel across shards: each
   shard translates and loads its own source/target pair from the same
   (persistent) semantic instance.  Shards are distributed over at
   most [recommended_domain_count] workers — replica preparation is
   CPU-bound, and striding it over more slots than the host has cores
   oversubscribes the machine (the prepare regression BENCH_PR5.json
   recorded at 8 domains on a smaller host).  A lone shard instead
   hands the pool down so the bulk data translation itself chunks
   across the workers. *)
let create_shards ~pool ~use_plan_cache ?cost_based ?stats_every
    ?drift_threshold ?live req sdb nshards =
  let ndomains = Workpool.size pool in
  let eff = max 1 (min ndomains (Domain.recommended_domain_count ())) in
  let mk s =
    try
      Shard.create ~id:s ~pool ~use_plan_cache ?cost_based ?stats_every
        ?drift_threshold ?live req sdb
    with e -> Error (Printexc.to_string e)
  in
  let created =
    if eff = 1 || nshards = 1 then List.init nshards (fun s -> (s, mk s))
    else
      Workpool.step pool (fun w ->
          if w >= eff then []
          else
            List.filter_map
              (fun s -> if s mod eff = w then Some (s, mk s) else None)
              (List.init nshards Fun.id))
      |> Array.to_list |> List.concat
  in
  let rec collect acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | (_, Ok s) :: rest -> collect (s :: acc) rest
    | (i, Error e) :: _ -> Error (Printf.sprintf "shard %d: %s" i e)
  in
  collect []
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) created)

(* Route the stream to shard slices, preserving id order per shard. *)
let route ~nshards requests =
  let per_shard = Array.make nshards [] in
  List.iter
    (fun r ->
      let s = Request.shard_of r ~nshards in
      per_shard.(s) <- r :: per_shard.(s))
    (List.rev requests);
  per_shard

let exec_request ~config ~shards ~phase ~migration_ok ~live s ~epoch ~seq
    (r : Request.t) =
  if config.fail_request = Some r.Request.id then
    failwith "injected worker fault"
  else
    Shard.exec shards.(s) ~phase
      ~tolerate_reordering:config.tolerate_reordering
      ~canary_seed:config.canary_seed ~migration_ok ~live ~clock ~epoch ~seq r

(* ------------------------------------------------------------------ *)
(* Live migration rides the logical clock: before a shard executes
   logical row [row] its backfill drains to the schedule's target for
   that row, and the coordinator opens the promotion gate only when
   the same schedule — a pure function of logical time — provably
   covers every shard's keyspace.  No watermark is ever exchanged, so
   migration adds nothing that could depend on physical scheduling. *)

let backfill_shard ~config ~shards s ~rows ~row =
  match Shard.migration shards.(s) with
  | None -> ()
  | Some m ->
      Shard.backfill_to shards.(s)
        ~to_:
          (Backfill.watermark_target ~total:(Migrate.total m)
             ~batch:config.backfill_batch ~lag:config.backfill_lag ~rows row)

(* Has every shard's schedule covered its keyspace once the canonical
   order has consumed logical row [r]?  A shard whose slice is shorter
   ran its last row already — the schedule forces a full drain there —
   and a shard with no rows at all was drained up front. *)
let migration_converged ~config ~shards ~rows_of r =
  Array.for_all
    (fun sh ->
      match Shard.migration sh with
      | None -> true
      | Some m ->
          let rows_s = rows_of (Shard.id sh) in
          rows_s = 0
          || Backfill.converged ~total:(Migrate.total m)
               ~batch:config.backfill_batch ~lag:config.backfill_lag
               ~rows:rows_s
               (min r (rows_s - 1)))
    shards

(* A shard the router never sends a request to would never reach a
   logical row, so its backfill is drained before serving starts — it
   serves nothing, so the early drain cannot show in any outcome. *)
let drain_unrouted_shards ~shards ~rows_of =
  Array.iter
    (fun sh ->
      match Shard.migration sh with
      | Some _ when rows_of (Shard.id sh) = 0 ->
          Shard.backfill_to sh ~to_:max_int
      | Some _ | None -> ())
    shards

(* First shard (by id) whose migration just failed; [None] while all
   replicas are still being maintained. *)
let first_migration_failure shards =
  Array.fold_left
    (fun acc sh ->
      match acc, Shard.migration_failed sh with
      | None, Some msg -> Some (Shard.id sh, msg)
      | acc, _ -> acc)
    None shards

let divergence_of ~epoch (o : Shadow.outcome) detail =
  { div_request = o.Shadow.request.Request.id;
    div_program = o.Shadow.request.Request.aprog.Ccv_abstract.Aprog.name;
    div_phase = o.Shadow.phase;
    div_shard = o.Shadow.shard;
    div_epoch = epoch;
    div_seq = o.Shadow.seq;
    detail;
  }

(* ------------------------------------------------------------------ *)
(* Barrier mode: the pre-epoch serving loop, kept as the baseline the
   bench compares against.  Each tick is one Workpool barrier step;
   the tick index doubles as the outcome's logical epoch. *)

let serve_ticks ~config ~pool ~shards ~ctl ~metrics ~nshards ~ndomains requests
    =
  let shard_ids = List.init nshards Fun.id in
  (* every shard backfills at every tick barrier, so the schedule's
     row count is simply the number of ticks *)
  let total_ticks =
    (List.length requests + config.batch - 1) / max 1 config.batch
  in
  let mig_failed = ref false in
  if config.live_migration then
    drain_unrouted_shards ~shards ~rows_of:(fun _ -> total_ticks);
  (* per-worker staging buffers, reused across ticks; worker w is the
     only writer between barriers *)
  let locals = Array.init ndomains (fun _ -> Counters.local_create ()) in
  let rec ticks tick remaining outcomes_rev div_rev =
    match remaining, Cutover.status ctl with
    | [], _ | _, Cutover.Aborted ->
        Ok (List.rev outcomes_rev, List.rev div_rev, List.length remaining)
    | _, Cutover.Serving -> (
        let batch, rest = take config.batch remaining in
        let phase = Cutover.phase ctl in
        let live = Metrics.live metrics ~phase:(Cutover.phase_name phase) in
        let per_shard = route ~nshards batch in
        let mok = not !mig_failed in
        let job w =
          let local = locals.(w) in
          let out = ref [] and fault = ref None in
          List.iter
            (fun s ->
              if s mod ndomains = w && !fault = None then begin
                if config.live_migration && mok then
                  backfill_shard ~config ~shards s ~rows:total_ticks
                    ~row:tick;
                List.iteri
                  (fun seq r ->
                    if !fault = None then
                      match
                        exec_request ~config ~shards ~phase ~migration_ok:mok
                          ~live:local s ~epoch:tick ~seq r
                      with
                      | o -> out := o :: !out
                      | exception e ->
                          fault :=
                            Some
                              { at_shard = s;
                                at_request = r.Request.id;
                                fault_detail = Printexc.to_string e;
                              })
                  per_shard.(s)
              end)
            shard_ids;
          match !fault with Some f -> Error f | None -> Ok (List.rev !out)
        in
        let results = Array.to_list (Workpool.step pool job) in
        (* tick barrier: fold every worker's staged charges into this
           tick's phase counter (coordinator is the only Atomic writer
           now, one flush per worker per tick) *)
        Array.iter (fun l -> Counters.flush_local live l) locals;
        let faults =
          List.filter_map (function Error f -> Some f | Ok _ -> None) results
        in
        match faults with
        | f0 :: _ ->
            (* earliest request id, so the report does not depend on
               which worker slot observed its fault first *)
            Error
              (List.fold_left
                 (fun a b -> if b.at_request < a.at_request then b else a)
                 f0 faults)
        | [] ->
            let outcomes =
              List.concat_map (function Ok os -> os | Error _ -> []) results
              |> List.sort (fun (a : Shadow.outcome) b ->
                     Int.compare a.Shadow.request.Request.id
                       b.Shadow.request.Request.id)
            in
            (* the barrier quiesces the workers, so the coordinator may
               inspect the shards directly: a migration failure rolls
               the controller back before this tick's verdicts land *)
            (if config.live_migration && not !mig_failed then
               match first_migration_failure shards with
               | None -> ()
               | Some (s, msg) ->
                   mig_failed := true;
                   let min_id ~of_shard =
                     List.fold_left
                       (fun acc (o : Shadow.outcome) ->
                         if of_shard = None || of_shard = Some o.Shadow.shard
                         then min acc o.Shadow.request.Request.id
                         else acc)
                       max_int outcomes
                   in
                   let at = min_id ~of_shard:(Some s) in
                   let at = if at = max_int then min_id ~of_shard:None else at in
                   let at = if at = max_int then -1 else at in
                   Cutover.rollback_to_shadow ctl ~at ~epoch:tick
                     ~reason:(Printf.sprintf "live migration failed: %s" msg));
            if config.live_migration then
              Cutover.set_gate ctl
                ((not !mig_failed)
                && migration_converged ~config ~shards
                     ~rows_of:(fun _ -> total_ticks)
                     tick);
            let div_rev =
              List.fold_left
                (fun acc (o : Shadow.outcome) ->
                  Metrics.record metrics o;
                  if o.Shadow.shadowed then
                    Cutover.observe ctl ~request_id:o.Shadow.request.Request.id
                      ~epoch:tick ~divergent:o.Shadow.divergent;
                  match Shadow.divergence_detail o with
                  | None -> acc
                  | Some detail -> divergence_of ~epoch:tick o detail :: acc)
                div_rev outcomes
            in
            ticks (tick + 1) rest (List.rev_append outcomes outcomes_rev)
              div_rev)
  in
  ticks 0 requests [] []

(* ------------------------------------------------------------------ *)
(* Epoch mode: barrier-free serving over published snapshots.

   Each shard's slice of the stream is chunked into epoch rows of
   [epoch_batch] requests.  The worker owning a shard executes its
   rows strictly in epoch order (so the replica pair evolves exactly
   as it would sequentially) and publishes each finished row into a
   per-shard single-producer mailbox; nobody waits at any barrier.
   The coordinator drains the mailboxes into an {!Ccv_common.Epoch}
   reorder buffer and consumes complete rows in canonical
   [(epoch, shard, seq)] order — the same total order no matter how
   the physical arrivals interleave, which is what keeps the report
   deterministic across domain counts.

   The phase a row executes under is pre-committed: [plan.(e)] is an
   atomic cell the coordinator publishes once it has consumed row
   [e - lag] (rows [0 .. lag-1] carry the initial phase).  Workers
   therefore run up to [lag] epochs ahead of the controller — a
   pipeline, not a race: the plan is part of the deterministic order,
   so the same stream yields the same phases at any domain count.

   [halt_at] stops the pipeline early (abort or fault): workers skip
   rows at or beyond it, and the wait-for-phase loops exit instead of
   spinning on a cell that will never be published. *)

(* A finished row carries its outcomes plus the owning shard's
   migration-failure message, if any: shard state belongs to the
   owning worker, so failure travels to the coordinator with the row
   instead of being read across domains. *)
type epoch_payload =
  | Done of Shadow.outcome list * string option
  | Failed of fault

(* Merging split sub-rows (ascending subseq, left = lower): outcome
   lists concatenate — the sub-chunks partition the row's slice in
   order, so concatenation restores exactly the payload an unsplit
   execution would have published; a fault anywhere in the row
   supersedes the partial outcomes, exactly as an unsplit worker
   discards the outcomes it ran before the faulting request; the first
   fragment to observe the shard's migration failure carries the
   message (the flag is sticky, so later fragments agree). *)
let merge_payload a b =
  match a, b with
  | (Failed _ as f), _ -> f
  | _, (Failed _ as f) -> f
  | Done (o1, m1), Done (o2, m2) ->
      Done (o1 @ o2, (match m1 with Some _ -> m1 | None -> m2))

(* A shard cursor: holding the token is the exclusive right to run
   shard [ts]'s next pending sub-row.  Exclusivity travels through the
   steal queue, so the mutable fields need no lock — only the current
   holder touches them, and the queue's CAS orders each handoff. *)
type token = { ts : int; mutable trow : int; mutable tsub : int }

let serve_epochs ~config ~pool ~shards ~ctl ~metrics ~nshards ~ndomains ~eff
    ~wait_idle ~steal_exec ~steal_stolen ~steal_splits requests =
  let ebatch = max 1 config.epoch_batch in
  let lag = max 1 config.epoch_lag in
  let shard_rows =
    Array.map
      (fun slice -> Array.of_list (chunks ebatch slice))
      (route ~nshards requests)
  in
  let rows = Array.map Array.length shard_rows in
  if config.live_migration then
    drain_unrouted_shards ~shards ~rows_of:(fun s -> rows.(s));
  (* Hot-shard row splitting (steal mode only): a row longer than the
     threshold is cut into sub-rows that successive holders of the
     shard's token execute back-to-back — several workers end up
     pipelining one hot shard's row while the reorder buffer merges the
     fragments back into a single cell.  [sub_rows.(s).(e)] is the
     row's partition as [(seq_base, chunk)] pairs; an unsplit row is
     the single pair [(0, row)]. *)
  let thr =
    if config.steal && config.split_threshold > 0 then config.split_threshold
    else 0
  in
  let sub_rows =
    Array.map
      (Array.map (fun row ->
           if thr > 0 && List.length row > thr then
             Array.of_list
               (List.mapi (fun k c -> (k * thr, c)) (chunks thr row))
           else [| (0, row) |]))
      shard_rows
  in
  let buf = Epoch.create ~merge:merge_payload ~rows () in
  let total = Epoch.total_rows buf in
  let plan = Array.init total (fun _ -> Snapshot.cell None) in
  for e = 0 to min lag total - 1 do
    Snapshot.publish plan.(e) (Some (Cutover.phase ctl, true))
  done;
  let halt_at = Atomic.make max_int in
  let mailboxes = Array.init nshards (fun _ -> Snapshot.mailbox ()) in
  let locals = Array.init ndomains (fun _ -> Counters.local_create ()) in
  let idle_wait w f =
    (* bounded pause off the hot path; charged to this slot's idle *)
    let t0 = clock () in
    f ();
    wait_idle.(w) <- wait_idle.(w) +. (clock () -. t0)
  in
  (* Run sub-chunk [k] of row [(s, e)]; [seq] stays the request's rank
     within the whole row ([seq_base + i]), so outcome keys are
     identical whether or not the row was split. *)
  let exec_sub ~live ~phase ~migration_ok s e k =
    let seq_base, chunk = sub_rows.(s).(e).(k) in
    let out = ref [] and fault = ref None in
    List.iteri
      (fun i r ->
        if !fault = None then
          match
            exec_request ~config ~shards ~phase ~migration_ok ~live s ~epoch:e
              ~seq:(seq_base + i) r
          with
          | o -> out := o :: !out
          | exception ex ->
              fault :=
                Some
                  { at_shard = s;
                    at_request = r.Request.id;
                    fault_detail = Printexc.to_string ex;
                  })
      chunk;
    match !fault with
    | Some f -> Failed f
    | None -> Done (List.rev !out, Shard.migration_failed shards.(s))
  in
  (* Advance one owned shard if its next row is ready; [publish] posts
     the finished row (workers go through their mailbox, the
     coordinator writes the reorder buffer directly).  On a fault the
     shard's remaining rows are filled with the same fault so the
     reorder buffer still completes — rows behind a dead shard must
     not stall the canonical order. *)
  let advance ~live ~next ~publish s =
    let e = next.(s) in
    if e >= rows.(s) then false
    else if Atomic.get halt_at <= e then begin
      next.(s) <- rows.(s);
      true
    end
    else
      match Snapshot.read plan.(e) with
      | None -> false
      | Some (phase, mok) ->
          if config.live_migration && mok then
            backfill_shard ~config ~shards s ~rows:rows.(s) ~row:e;
          (match exec_sub ~live ~phase ~migration_ok:mok s e 0 with
          | Failed f as p ->
              publish s e p;
              for e' = e + 1 to rows.(s) - 1 do
                publish s e' (Failed f)
              done;
              next.(s) <- rows.(s)
          | Done _ as p ->
              publish s e p;
              next.(s) <- e + 1);
          true
  in
  (* Shard ownership strides over the [eff] engaged slots only: an
     epoch worker that cannot get a core to itself spins against the
     coordinator instead of helping it (the same oversubscription
     cliff BENCH_PR5 measured for translation), so surplus slots stay
     dark.  The reorder buffer makes the served trace independent of
     which slot ran which shard, so clamping changes wall clock
     only. *)
  let owned w = List.filter (fun s -> s mod eff = w) (List.init nshards Fun.id) in
  (* Coordinator state: interleaves executing work of its own, draining
     the mailboxes, and consuming complete rows in canonical order. *)
  let outcomes_rev = ref [] and div_rev = ref [] in
  let error = ref None in
  let mig_failed = ref false in
  let consume r cells =
    let faults =
      List.filter_map
        (fun (_, p) -> match p with Failed f -> Some f | Done _ -> None)
        cells
    in
    match faults with
    | f0 :: rest ->
        (* earliest request id within the first faulty row, so the
           report does not depend on arrival interleaving *)
        error :=
          Some
            (List.fold_left
               (fun a b -> if b.at_request < a.at_request then b else a)
               f0 rest);
        Atomic.set halt_at (r + 1)
    | [] ->
        (* a migration failure posted with this row rolls the
           controller back before the row's verdicts are observed;
           the canonical order picks the first failing shard, so the
           transition is the same at any domain count *)
        (if config.live_migration && not !mig_failed then
           match
             List.fold_left
               (fun acc (_, p) ->
                 match acc, p with
                 | None, Done (os, Some msg) -> Some (os, msg)
                 | acc, _ -> acc)
               None cells
           with
           | None -> ()
           | Some (os, msg) ->
               mig_failed := true;
               let at =
                 List.fold_left
                   (fun acc (o : Shadow.outcome) ->
                     min acc o.Shadow.request.Request.id)
                   max_int os
               in
               let at = if at = max_int then -1 else at in
               Cutover.rollback_to_shadow ctl ~at ~epoch:r
                 ~reason:(Printf.sprintf "live migration failed: %s" msg));
        if config.live_migration then
          Cutover.set_gate ctl
            ((not !mig_failed)
            && migration_converged ~config ~shards
                 ~rows_of:(fun s -> rows.(s))
                 r);
        List.iter
          (fun (_, p) ->
            match p with
            | Failed _ -> ()
            | Done (os, _) ->
                List.iter
                  (fun (o : Shadow.outcome) ->
                    Metrics.record metrics o;
                    (* no barrier to flush staged charges at: the
                       coordinator charges the phase's live counter
                       per consumed outcome instead *)
                    let live = Metrics.live metrics ~phase:o.Shadow.phase in
                    Counters.record_reads live
                      (o.Shadow.source_accesses + o.Shadow.target_accesses);
                    Counters.record_write live;
                    if o.Shadow.shadowed then
                      Cutover.observe ctl
                        ~request_id:o.Shadow.request.Request.id ~epoch:r
                        ~divergent:o.Shadow.divergent;
                    (match Shadow.divergence_detail o with
                    | None -> ()
                    | Some detail ->
                        div_rev := divergence_of ~epoch:r o detail :: !div_rev);
                    outcomes_rev := o :: !outcomes_rev)
                  os)
          cells;
        if Cutover.status ctl = Cutover.Aborted then
          Atomic.set halt_at (r + 1)
        else begin
          let e' = r + lag in
          if e' < total then
            Snapshot.publish plan.(e')
              (Some (Cutover.phase ctl, not !mig_failed))
        end
  in
  let drain_mailboxes () =
    let got = ref false in
    Array.iteri
      (fun s mb ->
        match Snapshot.take_all mb with
        | [] -> ()
        | posts ->
            got := true;
            List.iter
              (fun (e, k, n, p) ->
                Epoch.publish_sub buf ~shard:s ~epoch:e ~subseq:k ~nsub:n p)
              posts)
      mailboxes;
    !got
  in
  let pop_rows () =
    let got = ref false in
    let continue_ = ref true in
    while !continue_ do
      if
        !error <> None
        || Atomic.get halt_at <= Epoch.frontier buf
      then continue_ := false
      else
        match Epoch.pop_row buf with
        | None -> continue_ := false
        | Some (r, cells) ->
            got := true;
            consume r cells
    done;
    !got
  in
  let finished () =
    !error <> None || Epoch.frontier buf >= total
    || Atomic.get halt_at <= Epoch.frontier buf
  in
  (* One coordinator iteration step shared by both schedulers:
     [produce] is whatever scheduling strategy the coordinator itself
     contributes per iteration. *)
  let coordinator_loop produce =
    let spins = ref 0 in
    let running = ref true in
    while !running do
      let progress = produce () in
      let progress = drain_mailboxes () || progress in
      let progress = pop_rows () || progress in
      if finished () then running := false
      else if progress then spins := 0
      else if eff > 1 && Workpool.quiescent pool then begin
        (* workers exited; whatever they posted is final — one last
           sweep, then anything still missing means a job died *)
        Workpool.drain pool;
        ignore (drain_mailboxes ());
        ignore (pop_rows ());
        if not (finished ()) then
          failwith
            "epoch serving: workers exited without completing their rows";
        running := false
      end
      else if !spins < 200 then begin
        incr spins;
        Domain.cpu_relax ()
      end
      else idle_wait 0 (fun () -> Unix.sleepf 50e-6)
    done
  in
  (if not config.steal then begin
     (* Pinned scheduler (the pre-PR10 baseline, kept for A/B runs):
        shard ownership strides statically over the engaged slots, so
        a hot shard is stuck with whichever worker owns it. *)
     let worker_job w =
       let live = locals.(w) in
       let my = owned w in
       let next = Array.make nshards 0 in
       let publish s e p = Snapshot.post mailboxes.(s) (e, 0, 1, p) in
       let spins = ref 0 in
       while List.exists (fun s -> next.(s) < rows.(s)) my do
         let progress =
           List.fold_left
             (fun p s -> advance ~live ~next ~publish s || p)
             false my
         in
         if progress then spins := 0
         else if !spins < 200 then begin
           incr spins;
           Domain.cpu_relax ()
         end
         else idle_wait w (fun () -> Unix.sleepf 50e-6)
       done
     in
     if eff > 1 then Workpool.submit pool worker_job;
     let my = owned 0 in
     let next = Array.make nshards 0 in
     let publish s e p = Epoch.publish buf ~shard:s ~epoch:e p in
     coordinator_loop (fun () ->
         List.fold_left
           (fun p s -> advance ~live:locals.(0) ~next ~publish s || p)
           false my)
   end
   else begin
     (* Work-stealing scheduler: shard cursors circulate as tokens in
        per-slot deques; any idle slot (the coordinator included)
        claims the next ready token — its own first, then a steal —
        so a hot shard's rows migrate to whoever has cycles instead of
        queueing behind one pinned owner. *)
     let q = Stealqueue.create ~slots:eff in
     let pending = Atomic.make 0 in
     Array.iteri
       (fun s n ->
         if n > 0 then begin
           Atomic.incr pending;
           Stealqueue.push q ~slot:(s mod eff) { ts = s; trow = 0; tsub = 0 }
         end)
       rows;
     (* Complete shard [tok.ts]'s remaining sub-rows with [Failed f],
        starting at the cursor, and park the cursor at the end: rows
        behind a dead shard must not stall the canonical order. *)
     let fault_fill publish tok f =
       let s = tok.ts in
       let e0 = tok.trow in
       if e0 < rows.(s) then begin
         let n0 = Array.length sub_rows.(s).(e0) in
         for k = tok.tsub to n0 - 1 do
           publish s e0 k n0 (Failed f)
         done;
         for e' = e0 + 1 to rows.(s) - 1 do
           let n' = Array.length sub_rows.(s).(e') in
           for k = 0 to n' - 1 do
             publish s e' k n' (Failed f)
           done
         done
       end;
       tok.trow <- rows.(s);
       tok.tsub <- 0
     in
     let try_run_token ~slot ~live ~publish tok =
       let s = tok.ts in
       if tok.trow >= rows.(s) then `Finished
       else if Atomic.get halt_at <= tok.trow then begin
         (* rows at or past the halt fence are never consumed *)
         tok.trow <- rows.(s);
         tok.tsub <- 0;
         `Finished
       end
       else begin
         let e = tok.trow in
         match Snapshot.read plan.(e) with
         | None -> `Blocked
         | Some (phase, mok) ->
             let nsub = Array.length sub_rows.(s).(e) in
             (* backfill once per row, before its first sub-row — the
                schedule is a function of logical time, and the later
                sub-rows run strictly after this one through the
                token's sequential chain *)
             if tok.tsub = 0 && config.live_migration && mok then
               backfill_shard ~config ~shards s ~rows:rows.(s) ~row:e;
             steal_exec.(slot) <- steal_exec.(slot) + 1;
             if nsub > 1 then steal_splits.(slot) <- steal_splits.(slot) + 1;
             (match exec_sub ~live ~phase ~migration_ok:mok s e tok.tsub with
             | Failed f -> fault_fill publish tok f
             | Done _ as p ->
                 publish s e tok.tsub nsub p;
                 if tok.tsub + 1 >= nsub then begin
                   tok.trow <- e + 1;
                   tok.tsub <- 0
                 end
                 else tok.tsub <- tok.tsub + 1);
             `Progress
       end
     in
     (* One claim-and-run; [`Progress] iff a sub-row ran or a token
        retired.  Time spent probing beyond the local deque is charged
        as steal-wait, not idle. *)
     let run_claim ~slot ~live ~publish =
       let t0 = clock () in
       match Stealqueue.claim q ~slot with
       | Stealqueue.Empty ->
           Workpool.charge_steal_wait pool ~slot (clock () -. t0);
           `Nothing
       | (Stealqueue.Own tok | Stealqueue.Stolen tok) as c ->
           (match c with
           | Stealqueue.Stolen _ ->
               steal_stolen.(slot) <- steal_stolen.(slot) + 1;
               Workpool.charge_steal_wait pool ~slot (clock () -. t0)
           | _ -> ());
           (match
              try try_run_token ~slot ~live ~publish tok
              with ex ->
                (* a scheduler-side failure (request faults are caught
                   in [exec_sub]) must still complete the shard's rows,
                   or peers spin on [pending] forever; best-effort
                   fill, then retire — rows that stay unpublished
                   anyway are caught by the quiescence sweep *)
                let f =
                  { at_shard = tok.ts;
                    at_request = -1;
                    fault_detail = "scheduler: " ^ Printexc.to_string ex;
                  }
                in
                (try fault_fill publish tok f with _ -> ());
                `Finished
            with
           | `Progress ->
               (* requeue at the tail: tokens cycle round-robin, so
                  every shard keeps pace with the arrival schedule —
                  re-pushing at the head would grind one shard to its
                  lag fence while the others' requests age (bursty
                  completions, fat open-loop tail) *)
               Stealqueue.push_back q ~slot tok;
               `Progress
           | `Blocked ->
               (* park at the tail: the owner cycles past it, a thief
                  finds it first *)
               Stealqueue.push_back q ~slot tok;
               `Nothing
           | `Finished ->
               Atomic.decr pending;
               `Progress)
     in
     let steal_job w =
       let live = locals.(w) in
       let publish s e k n p = Snapshot.post mailboxes.(s) (e, k, n, p) in
       let spins = ref 0 in
       (* Exponential backoff while empty-handed: unlike a pinned
          worker, a steal worker cannot exit when its own shards are
          done (a hot shard may still need it), so on an oversubscribed
          host a fixed short nap would keep preempting the slot that is
          actually serving.  Doubling toward a cap approximates the
          pinned worker's exit without giving up work conservation. *)
       let nap = ref 50e-6 in
       while Atomic.get pending > 0 do
         match run_claim ~slot:w ~live ~publish with
         | `Progress ->
             spins := 0;
             nap := 50e-6
         | `Nothing ->
             if !spins < 200 then begin
               incr spins;
               Domain.cpu_relax ()
             end
             else begin
               (* truly idle: nothing runnable anywhere right now *)
               let t0 = clock () in
               Unix.sleepf !nap;
               nap := Float.min (2. *. !nap) 2e-3;
               Workpool.charge_idle pool ~slot:w (clock () -. t0)
             end
       done
     in
     if eff > 1 then Workpool.submit pool steal_job;
     (* the coordinator claims like any other slot, but publishes into
        the reorder buffer directly — no mailbox hop for slot 0 *)
     let publish_direct s e k n p =
       Epoch.publish_sub buf ~shard:s ~epoch:e ~subseq:k ~nsub:n p
     in
     (* one claim per loop pass: the coordinator must come back to the
        mailboxes (and the plan-cell publication consuming drives)
        after every sub-row, or workers block on unpublished phase
        cells while it grinds through a burst *)
     coordinator_loop (fun () ->
         run_claim ~slot:0 ~live:locals.(0) ~publish:publish_direct
         = `Progress)
   end);
  if eff > 1 then Workpool.drain pool;
  match !error with
  | Some f -> Error f
  | None ->
      let outcomes = List.rev !outcomes_rev in
      let served = List.length outcomes in
      Ok (outcomes, List.rev !div_rev, List.length requests - served)

(* ------------------------------------------------------------------ *)

let run ?(config = default_config) ~cutover req sdb requests =
  if
    config.live_migration
    && not (Cutover.equal_phase cutover.Cutover.initial Cutover.Shadow)
  then
    Error
      "live migration must start serving in the shadow phase: the \
       convergence gate has no say over a pre-promoted target"
  else
  let nshards = max 1 config.shards in
  let ndomains = max 1 (min config.domains nshards) in
  Workpool.with_pool ~clock ndomains @@ fun pool ->
  let live =
    if config.live_migration then
      Some
        { Migrate.batch = config.backfill_batch;
          lag = config.backfill_lag;
          fail_at_slot = config.fail_backfill;
        }
    else None
  in
  let t_prep = clock () in
  match create_shards ~pool ~use_plan_cache:config.use_plan_cache
          ~cost_based:config.cost_based_plans ~stats_every:config.stats_every
          ~drift_threshold:config.drift_threshold ?live req sdb nshards
  with
  | Error e -> Error e
  | Ok shards ->
      let prepare_s = clock () -. t_prep in
      let ctl = Cutover.create cutover in
      let metrics = Metrics.create () in
      (* epoch-mode frontier waits, per slot; stays zero in barrier
         mode where the pool's park time is the only idle *)
      let wait_idle = Array.make ndomains 0. in
      (* steal-scheduler activity, per slot; each cell is written only
         by the domain running that slot and read after the drain *)
      let steal_exec = Array.make ndomains 0 in
      let steal_stolen = Array.make ndomains 0 in
      let steal_splits = Array.make ndomains 0 in
      (* slots the epoch scheduler actually engages: past the hardware
         domain count a slot competes with the coordinator for cores
         instead of helping it *)
      let eff =
        if config.epoch_serving then
          max 1 (min ndomains (Domain.recommended_domain_count ()))
        else ndomains
      in
      let t0 = clock () in
      let result =
        if config.epoch_serving then
          serve_epochs ~config ~pool ~shards ~ctl ~metrics ~nshards ~ndomains
            ~eff ~wait_idle ~steal_exec ~steal_stolen ~steal_splits requests
        else
          serve_ticks ~config ~pool ~shards ~ctl ~metrics ~nshards ~ndomains
            requests
      in
      (match result with
      | Error { at_shard; at_request; fault_detail } ->
          Error
            (Printf.sprintf "worker failure at shard %d, request %d: %s"
               at_shard at_request fault_detail)
      | Ok (outcomes, divergences, unserved) ->
          let plan_stats =
            Array.fold_left
              (fun acc s ->
                Ccv_plan.Plan_cache.add_stats acc (Shard.plan_stats s))
              Ccv_plan.Plan_cache.zero_stats shards
          in
          (* true idle = barrier park time + the idle a steal worker
             charged itself while nothing was runnable; steal-probe
             time is reported separately, it is not idleness *)
          let park = Workpool.charged_idle_times pool in
          let swait = Workpool.steal_wait_times pool in
          (* slots the epoch scheduler left dark report 0: they were
             never asked to serve, so their park time is not
             coordination overhead *)
          let worker_idle_s =
            List.init ndomains (fun i ->
                if i < eff then park.(i) +. wait_idle.(i) else 0.)
          in
          let steal_wait_s =
            List.init ndomains (fun i -> if i < eff then swait.(i) else 0.)
          in
          let steal_stats =
            if config.epoch_serving && config.steal then
              Some
                (List.init ndomains (fun i ->
                     { sub_rows_run = steal_exec.(i);
                       stolen = steal_stolen.(i);
                       split_frags = steal_splits.(i);
                     }))
            else None
          in
          (* Serving-time index advice: re-run the plan-layer scan
             advisor under the statistics current plans are costed
             under (rebased on drift), once per distinct program — the
             report names the concrete [Sdb.ensure_index] calls whose
             absence leaves a hot equality served by a scan. *)
          let index_advice =
            match
              Array.fold_left
                (fun acc sh ->
                  match acc with
                  | Some _ -> acc
                  | None -> Shard.baseline_stats sh)
                None shards
            with
            | None -> []
            | Some stats ->
                let seen = Hashtbl.create 8 in
                List.concat_map
                  (fun (r : Request.t) ->
                    let p = r.Request.aprog in
                    let name = p.Ccv_abstract.Aprog.name in
                    if Hashtbl.mem seen name then []
                    else begin
                      Hashtbl.add seen name ();
                      List.concat_map
                        (fun query ->
                          List.map
                            (fun s -> s.Ccv_convert.Advisor.message)
                            (Ccv_convert.Advisor.index_suggestions ~stats
                               req.Ccv_convert.Supervisor.source_schema query))
                        (Ccv_abstract.Aprog.queries p)
                    end)
                  requests
                |> List.sort_uniq String.compare
          in
          let migration =
            if not config.live_migration then None
            else
              Some
                (Array.fold_left
                   (fun acc sh ->
                     match Shard.migration sh with
                     | None -> acc
                     | Some m ->
                         let s = Migrate.summary m in
                         { Migrate.total_slots =
                             acc.Migrate.total_slots + s.Migrate.total_slots;
                           faulted = acc.Migrate.faulted + s.Migrate.faulted;
                           backfilled =
                             acc.Migrate.backfilled + s.Migrate.backfilled;
                           mig_warnings =
                             acc.Migrate.mig_warnings @ s.Migrate.mig_warnings;
                           mig_failed =
                             (match acc.Migrate.mig_failed with
                             | Some _ as f -> f
                             | None -> s.Migrate.mig_failed);
                         })
                   { Migrate.total_slots = 0;
                     faulted = 0;
                     backfilled = 0;
                     mig_warnings = [];
                     mig_failed = None;
                   }
                   shards)
          in
          let replica_fingerprint =
            if not config.fingerprint_replicas then None
            else
              (* per-shard canonical digests in shard order: each shard
                 replica evolved under its own slice's writes, so the
                 combined digest pins the whole pool's target state *)
              Array.to_list shards
              |> List.map (fun sh ->
                     match
                       Migrate.fingerprint_target req (Shard.target_database sh)
                     with
                     | Ok fp -> fp
                     | Error e -> "error:" ^ e)
              |> String.concat "|"
              |> fun s -> Some (Digest.to_hex (Digest.string s))
          in
          Ok
            { outcomes;
              transitions = Cutover.transitions ctl;
              divergences;
              final_phase = Cutover.phase ctl;
              status = Cutover.status ctl;
              metrics;
              plan_stats;
              served = List.length outcomes;
              unserved;
              domains = ndomains;
              epoch_serving = config.epoch_serving;
              pool_idle_s = List.fold_left ( +. ) 0. worker_idle_s;
              worker_idle_s;
              steal_wait_s;
              steal_stats;
              index_advice;
              prepare_s;
              wall_s = clock () -. t0;
              migration;
              replica_fingerprint;
            })

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "served %d request(s) in %.2fs (replicas prepared in %.3fs); final \
        phase %s (%s)\n"
       r.served r.wall_s r.prepare_s
       (Cutover.phase_name r.final_phase)
       (match r.status with
       | Cutover.Serving -> "serving"
       | Cutover.Aborted ->
           Printf.sprintf "ABORTED, %d request(s) unserved" r.unserved));
  Buffer.add_string b
    (Printf.sprintf "pool: %d worker domain(s), %s, %.3fs idle (%s)\n"
       r.domains
       (if r.epoch_serving then "epoch serving" else "tick barrier")
       r.pool_idle_s
       (String.concat ", "
          (List.map (Printf.sprintf "%.3f") r.worker_idle_s)));
  (match r.steal_stats with
  | None -> ()
  | Some slots ->
      Buffer.add_string b
        (Printf.sprintf "steal scheduler: %s; steal-wait %.3fs (%s)\n"
           (String.concat ", "
              (List.mapi
                 (fun i s ->
                   Printf.sprintf "slot %d ran %d sub-row(s) (%d stolen, %d split)"
                     i s.sub_rows_run s.stolen s.split_frags)
                 slots))
           (List.fold_left ( +. ) 0. r.steal_wait_s)
           (String.concat ", "
              (List.map (Printf.sprintf "%.3f") r.steal_wait_s))));
  (match r.index_advice with
  | [] -> ()
  | advice ->
      Buffer.add_string b
        (Printf.sprintf "index advice (%d):\n" (List.length advice));
      List.iter
        (fun m -> Buffer.add_string b (Printf.sprintf "  - %s\n" m))
        advice);
  (match r.migration with
  | None -> ()
  | Some m ->
      Buffer.add_string b
        (Printf.sprintf
           "live migration: %d slot(s) — %d faulted in, %d backfilled%s%s\n"
           m.Migrate.total_slots m.Migrate.faulted m.Migrate.backfilled
           (match m.Migrate.mig_warnings with
           | [] -> ""
           | ws -> Printf.sprintf ", %d warning(s)" (List.length ws))
           (match m.Migrate.mig_failed with
           | None -> ""
           | Some msg -> Printf.sprintf "; FAILED: %s" msg)));
  (match r.replica_fingerprint with
  | None -> ()
  | Some fp -> Buffer.add_string b (Printf.sprintf "target replicas: %s\n" fp));
  let ps = r.plan_stats in
  if ps.Ccv_plan.Plan_cache.hits + ps.Ccv_plan.Plan_cache.misses > 0 then begin
    Buffer.add_string b
      (Printf.sprintf
         "plan cache: %d hit(s), %d miss(es), %d compiled pair(s), %.1f%% hit rate\n"
         ps.Ccv_plan.Plan_cache.hits ps.Ccv_plan.Plan_cache.misses
         ps.Ccv_plan.Plan_cache.size
         (100. *. Ccv_plan.Plan_cache.hit_rate ps));
    if ps.Ccv_plan.Plan_cache.drift_invalidations > 0 then
      Buffer.add_string b
        (Printf.sprintf
           "stats drift: %d generation flush(es) past the drift threshold\n"
           ps.Ccv_plan.Plan_cache.drift_invalidations)
  end;
  if r.transitions <> [] then begin
    Buffer.add_string b "\nphase transitions:\n";
    List.iter
      (fun t ->
        Buffer.add_string b
          (Printf.sprintf "  %s\n" (Fmt.str "%a" Cutover.pp_transition t)))
      r.transitions
  end;
  (match r.divergences with
  | [] -> Buffer.add_string b "\nno divergences detected\n"
  | ds ->
      Buffer.add_string b
        (Printf.sprintf "\ndivergence log (%d total, first %d shown):\n"
           (List.length ds)
           (min 5 (List.length ds)));
      List.iteri
        (fun i d ->
          if i < 5 then
            Buffer.add_string b
              (Printf.sprintf
                 "  request %d (%s, %s, shard %d, epoch %d): %s\n"
                 d.div_request d.div_program d.div_phase d.div_shard
                 d.div_epoch d.detail))
        ds);
  Buffer.add_char b '\n';
  Buffer.add_string b (Metrics.render r.metrics);
  Buffer.contents b
