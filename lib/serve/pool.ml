open Ccv_common

type config = {
  domains : int;
  shards : int;
  batch : int;
  canary_seed : int;
  tolerate_reordering : bool;
  use_plan_cache : bool;
  fail_request : int option;
}

let default_config =
  { domains = 1;
    shards = 4;
    batch = 16;
    canary_seed = 0xC0FFEE;
    tolerate_reordering = true;
    use_plan_cache = true;
    fail_request = None;
  }

type divergence = {
  div_request : int;
  div_program : string;
  div_phase : string;
  div_shard : int;
  detail : string;
}

type report = {
  outcomes : Shadow.outcome list;
  transitions : Cutover.transition list;
  divergences : divergence list;
  final_phase : Cutover.phase;
  status : Cutover.status;
  metrics : Metrics.t;
  plan_stats : Ccv_plan.Plan_cache.stats;
  served : int;
  unserved : int;
  domains : int;
  pool_idle_s : float;
  wall_s : float;
}

(* A worker domain never lets an exception escape into the pool — it
   would otherwise strand the coordinator at the tick barrier.  The
   fault is caught next to the failing request and carried back as a
   value; [run] surfaces it as [Error] naming the shard and request. *)
type fault = { at_shard : int; at_request : int; fault_detail : string }

let take n l =
  let rec go acc n l =
    match n, l with
    | 0, _ | _, [] -> (List.rev acc, l)
    | n, x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

let clock () = Unix.gettimeofday ()

(* Replica preparation is embarrassingly parallel across shards: each
   shard translates and loads its own source/target pair from the same
   (persistent) semantic instance.  Shards are assigned to workers the
   same way ticks assign them (id mod domains); a lone shard instead
   hands the pool down so the bulk data translation itself chunks
   across the workers. *)
let create_shards ~pool ~use_plan_cache req sdb nshards =
  let ndomains = Workpool.size pool in
  let mk s =
    try Shard.create ~id:s ~pool ~use_plan_cache req sdb
    with e -> Error (Printexc.to_string e)
  in
  let created =
    if ndomains = 1 || nshards = 1 then
      List.init nshards (fun s -> (s, mk s))
    else
      Workpool.step pool (fun w ->
          List.filter_map
            (fun s -> if s mod ndomains = w then Some (s, mk s) else None)
            (List.init nshards Fun.id))
      |> Array.to_list |> List.concat
  in
  let rec collect acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | (_, Ok s) :: rest -> collect (s :: acc) rest
    | (i, Error e) :: _ -> Error (Printf.sprintf "shard %d: %s" i e)
  in
  collect []
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) created)

let run ?(config = default_config) ~cutover req sdb requests =
  let nshards = max 1 config.shards in
  let ndomains = max 1 (min config.domains nshards) in
  Workpool.with_pool ~clock ndomains @@ fun pool ->
  match create_shards ~pool ~use_plan_cache:config.use_plan_cache req sdb
          nshards
  with
  | Error e -> Error e
  | Ok shards ->
      let ctl = Cutover.create cutover in
      let metrics = Metrics.create () in
      let shard_ids = List.init nshards Fun.id in
      (* per-worker staging buffers, reused across ticks; worker w is
         the only writer between barriers *)
      let locals = Array.init ndomains (fun _ -> Counters.local_create ()) in
      let t0 = clock () in
      let rec ticks remaining outcomes_rev div_rev =
        match remaining, Cutover.status ctl with
        | [], _ | _, Cutover.Aborted ->
            Ok (List.rev outcomes_rev, List.rev div_rev, List.length remaining)
        | _, Cutover.Serving -> (
            let batch, rest = take config.batch remaining in
            let phase = Cutover.phase ctl in
            let live = Metrics.live metrics ~phase:(Cutover.phase_name phase) in
            (* shard slices, id order within each slice *)
            let per_shard = Array.make nshards [] in
            List.iter
              (fun r ->
                let s = Request.shard_of r ~nshards in
                per_shard.(s) <- r :: per_shard.(s))
              (List.rev batch);
            let exec_one local s (r : Request.t) =
              if config.fail_request = Some r.Request.id then
                failwith "injected worker fault"
              else
                Shard.exec shards.(s) ~phase
                  ~tolerate_reordering:config.tolerate_reordering
                  ~canary_seed:config.canary_seed ~live:local ~clock r
            in
            let job w =
              let local = locals.(w) in
              let out = ref [] and fault = ref None in
              List.iter
                (fun s ->
                  if s mod ndomains = w && !fault = None then
                    List.iter
                      (fun r ->
                        if !fault = None then
                          match exec_one local s r with
                          | o -> out := o :: !out
                          | exception e ->
                              fault :=
                                Some
                                  { at_shard = s;
                                    at_request = r.Request.id;
                                    fault_detail = Printexc.to_string e;
                                  })
                      per_shard.(s))
                shard_ids;
              match !fault with Some f -> Error f | None -> Ok (List.rev !out)
            in
            let results = Array.to_list (Workpool.step pool job) in
            (* tick barrier: fold every worker's staged charges into
               this tick's phase counter (coordinator is the only
               Atomic writer now, one flush per worker per tick) *)
            Array.iter (fun l -> Counters.flush_local live l) locals;
            let faults =
              List.filter_map
                (function Error f -> Some f | Ok _ -> None)
                results
            in
            match faults with
            | f0 :: _ ->
                (* earliest request id, so the report does not depend
                   on which worker slot observed its fault first *)
                Error
                  (List.fold_left
                     (fun a b -> if b.at_request < a.at_request then b else a)
                     f0 faults)
            | [] ->
                let outcomes =
                  List.concat_map
                    (function Ok os -> os | Error _ -> [])
                    results
                  |> List.sort (fun (a : Shadow.outcome) b ->
                         Int.compare a.Shadow.request.Request.id
                           b.Shadow.request.Request.id)
                in
                let div_rev =
                  List.fold_left
                    (fun acc (o : Shadow.outcome) ->
                      Metrics.record metrics o;
                      if o.Shadow.shadowed then
                        Cutover.observe ctl
                          ~request_id:o.Shadow.request.Request.id
                          ~divergent:o.Shadow.divergent;
                      match Shadow.divergence_detail o with
                      | None -> acc
                      | Some detail ->
                          { div_request = o.Shadow.request.Request.id;
                            div_program =
                              o.Shadow.request.Request.aprog
                                .Ccv_abstract.Aprog.name;
                            div_phase = o.Shadow.phase;
                            div_shard = o.Shadow.shard;
                            detail;
                          }
                          :: acc)
                    div_rev outcomes
                in
                ticks rest (List.rev_append outcomes outcomes_rev) div_rev)
      in
      (match ticks requests [] [] with
      | Error { at_shard; at_request; fault_detail } ->
          Error
            (Printf.sprintf "worker failure at shard %d, request %d: %s"
               at_shard at_request fault_detail)
      | Ok (outcomes, divergences, unserved) ->
          let plan_stats =
            Array.fold_left
              (fun acc s ->
                Ccv_plan.Plan_cache.add_stats acc (Shard.plan_stats s))
              Ccv_plan.Plan_cache.zero_stats shards
          in
          Ok
            { outcomes;
              transitions = Cutover.transitions ctl;
              divergences;
              final_phase = Cutover.phase ctl;
              status = Cutover.status ctl;
              metrics;
              plan_stats;
              served = List.length outcomes;
              unserved;
              domains = ndomains;
              pool_idle_s = Workpool.idle_time pool;
              wall_s = clock () -. t0;
            })

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "served %d request(s) in %.2fs; final phase %s (%s)\n"
       r.served r.wall_s
       (Cutover.phase_name r.final_phase)
       (match r.status with
       | Cutover.Serving -> "serving"
       | Cutover.Aborted ->
           Printf.sprintf "ABORTED, %d request(s) unserved" r.unserved));
  Buffer.add_string b
    (Printf.sprintf "pool: %d worker domain(s), %.3fs parked between ticks\n"
       r.domains r.pool_idle_s);
  let ps = r.plan_stats in
  if ps.Ccv_plan.Plan_cache.hits + ps.Ccv_plan.Plan_cache.misses > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "plan cache: %d hit(s), %d miss(es), %d compiled pair(s), %.1f%% hit rate\n"
         ps.Ccv_plan.Plan_cache.hits ps.Ccv_plan.Plan_cache.misses
         ps.Ccv_plan.Plan_cache.size
         (100. *. Ccv_plan.Plan_cache.hit_rate ps));
  if r.transitions <> [] then begin
    Buffer.add_string b "\nphase transitions:\n";
    List.iter
      (fun t ->
        Buffer.add_string b
          (Printf.sprintf "  %s\n" (Fmt.str "%a" Cutover.pp_transition t)))
      r.transitions
  end;
  (match r.divergences with
  | [] -> Buffer.add_string b "\nno divergences detected\n"
  | ds ->
      Buffer.add_string b
        (Printf.sprintf "\ndivergence log (%d total, first %d shown):\n"
           (List.length ds)
           (min 5 (List.length ds)));
      List.iteri
        (fun i d ->
          if i < 5 then
            Buffer.add_string b
              (Printf.sprintf "  request %d (%s, %s, shard %d): %s\n"
                 d.div_request d.div_program d.div_phase d.div_shard d.detail))
        ds);
  Buffer.add_char b '\n';
  Buffer.add_string b (Metrics.render r.metrics);
  Buffer.contents b
