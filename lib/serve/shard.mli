(** A shard owns one source/target database replica pair and serves
    its partition of the request stream sequentially, so each engine
    stays single-threaded: parallelism comes from running many shards
    on many domains, never from sharing an engine.  Database updates a
    request makes are retained in the shard's replicas for subsequent
    requests of the same shard. *)

open Ccv_common
open Ccv_model
open Ccv_convert

type t

val id : t -> int

(** [create ~id req sdb] realizes the shard's own replica pair from
    the semantic instance via {!Supervisor.prepare_serving}.  With
    [use_plan_cache] (the default), each distinct request program is
    converted and compiled to closures once
    ({!Ccv_convert.Engines.compile}) and memoized in a per-shard
    {!Ccv_plan.Plan_cache} keyed by the serving fingerprint —
    subsequent requests for the same program skip the whole
    analyze/convert/generate/compile pipeline.  Conversion refusals
    are cached too; the served behaviour is identical either way.
    [pool] parallelizes the bulk data translation of replica
    preparation (no-op when creation itself already runs on a pool
    worker).

    With [live], the shard prepares for {e live migration} instead
    ({!Ccv_convert.Supervisor.prepare_live} via
    {!Ccv_migrate.Migrate.start}): the target replica starts empty and
    fills on first touch and by backfill, so creation does no bulk
    data translation at all.

    With [cost_based], a cardinality snapshot ({!Ccv_plan.Stats}) is
    taken at creation and every compiled pair is optimized under it
    (selectivity-ordered conjuncts); cached plans carry the snapshot's
    fingerprint.  [stats_every = n] (with [n > 0]) re-observes the
    live target replica every [n] requests of this shard; when the
    largest relative count change exceeds [drift_threshold] (default
    0.5), the plan-cache generation is flushed
    ({!Ccv_plan.Plan_cache.note_drift}) and the statistics rebased, so
    subsequent requests are recosted under current cardinalities. *)
val create :
  id:int -> ?pool:Ccv_common.Workpool.t -> ?use_plan_cache:bool ->
  ?cost_based:bool -> ?stats_every:int -> ?drift_threshold:float ->
  ?live:Ccv_migrate.Migrate.config ->
  Supervisor.request -> Sdb.t ->
  (t, string) result

(** Data-translation warnings from replica preparation. *)
val warnings : t -> string list

(** Live-migration state, when the shard was created [~live]. *)
val migration : t -> Ccv_migrate.Migrate.t option

(** Why this shard's migration stopped, if it did. *)
val migration_failed : t -> string option

(** The target replica as currently served (for fingerprinting). *)
val target_database : t -> Engines.database

(** Drain this shard's pending records up to slot [to_]
    ({!Ccv_migrate.Migrate.backfill_to}); no-op without live migration
    or after a failure. *)
val backfill_to : t -> to_:int -> unit

(** Hit/miss/invalidation counters of this shard's plan cache (all
    zero when the cache is disabled). *)
val plan_stats : t -> Ccv_plan.Plan_cache.stats

(** The statistics snapshot current plans are costed under; [None]
    unless the shard was created [~cost_based:true]. *)
val baseline_stats : t -> Ccv_plan.Stats.t option

(** Execute one request under the given phase.  [live] is the calling
    worker's staging buffer, charged while the request runs (engine
    accesses as reads, one write per served request); the pool flushes
    it into the shared per-phase counter (tick barrier) or charges per
    consumed outcome (epoch serving).  [epoch]/[seq] stamp the outcome
    with its logical position — the tick index or snapshot epoch, and
    the request's rank within the shard's slice of it — and [epoch]
    also tags plan-cache compilations done on this request's behalf.
    [clock] supplies seconds for latency measurement.

    Under live migration the request's touch set is faulted in first
    (that time lands in the request's latency), and
    [migration_ok = false] — the coordinator's signal that migration
    failed somewhere in the pool — makes the shard serve the source
    engine alone, unshadowed. *)
val exec :
  t ->
  phase:Cutover.phase ->
  tolerate_reordering:bool ->
  canary_seed:int ->
  ?migration_ok:bool ->
  live:Counters.local ->
  clock:(unit -> float) ->
  epoch:int ->
  seq:int ->
  Request.t ->
  Shadow.outcome
