(** A shard owns one source/target database replica pair and serves
    its partition of the request stream sequentially, so each engine
    stays single-threaded: parallelism comes from running many shards
    on many domains, never from sharing an engine.  Database updates a
    request makes are retained in the shard's replicas for subsequent
    requests of the same shard. *)

open Ccv_common
open Ccv_model
open Ccv_convert

type t

val id : t -> int

(** [create ~id req sdb] realizes the shard's own replica pair from
    the semantic instance via {!Supervisor.prepare_serving}. *)
val create : id:int -> Supervisor.request -> Sdb.t -> (t, string) result

(** Data-translation warnings from replica preparation. *)
val warnings : t -> string list

(** Execute one request under the given phase.  [live] is the shared
    per-phase counter charged while the request runs (engine accesses
    as reads, one write per served request); [clock] supplies seconds
    for latency measurement. *)
val exec :
  t ->
  phase:Cutover.phase ->
  tolerate_reordering:bool ->
  canary_seed:int ->
  live:Counters.t ->
  clock:(unit -> float) ->
  Request.t ->
  Shadow.outcome
