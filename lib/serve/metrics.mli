(** Observability for the conversion service: per-phase/per-shard
    request counts, engine access totals, a fixed-bucket latency
    histogram, and the divergence log — rendered through
    {!Ccv_common.Tablefmt} and exportable as JSON rows.

    Aggregation happens on the coordinating thread (outcomes are
    merged tick by tick), and each phase also carries a {e live}
    {!Ccv_common.Counters.t} — reads accumulate engine record
    accesses, writes count served requests.  Shard workers no longer
    charge it per request from their domains: they stage into
    per-worker {!Ccv_common.Counters.local} buffers that the pool
    flushes into the phase counter at every tick barrier — or, under
    epoch serving, the coordinator charges it per consumed outcome —
    so the hot path touches no shared cache line.  The charged totals
    are the ground truth that the merged per-outcome view is checked
    against in the tests.  Each (phase, shard) cell also counts the
    distinct logical epochs it served, exported in the JSON rows. *)

open Ccv_common

(** {2 Latency histograms} *)

type hist

val hist_create : unit -> hist
val hist_add : hist -> float -> unit
(** [hist_add h us] files one latency observation, in microseconds. *)

val hist_count : hist -> int

(** Upper bucket bound (µs) under which the given fraction of
    observations falls; [infinity] when the top bucket is hit. *)
val hist_quantile : hist -> float -> float

(** {2 The metrics store} *)

type t

val create : unit -> t

(** The shared per-phase counter, created on first use.  Coordinator
    (and post-run reader) only — workers stage into
    {!Ccv_common.Counters.local} buffers instead. *)
val live : t -> phase:string -> Counters.t

(** Merge one outcome (coordinator thread only). *)
val record : t -> Shadow.outcome -> unit

val total_requests : t -> int
val total_divergent : t -> int
val total_refused : t -> int

(** [(phase, shard) ] cells seen so far, in first-seen order. *)
val phases : t -> string list

(** Per-phase totals: requests, by-source, by-target, shadowed,
    divergent, refused, source accesses, target accesses, served
    trace events ({!Ccv_common.Io_trace.length} summed over served
    traces). *)
type phase_totals = {
  requests : int;
  by_source : int;
  by_target : int;
  shadowed : int;
  divergent : int;
  refused : int;
  source_accesses : int;
  target_accesses : int;
  trace_events : int;
  latency : hist;
}

val phase_totals : t -> phase:string -> phase_totals

(** Boxed tables: one per-phase summary and one per-phase/per-shard
    breakdown. *)
val render : t -> string

(** One JSON row per (phase, shard) cell plus one per phase, as
    (key, rendered value) pairs ready for the bench writer. *)
val json_rows : t -> (string * string) list list
