(** Parallel shadow execution: one request, run on the source engine
    and/or the converted program on the translated database, with the
    two traces judged online by {!Ccv_convert.Equivalence}.  The served
    trace is the response the caller would see; the other run is the
    shadow. *)

open Ccv_common
open Ccv_convert

type decision = Serve_source | Serve_target

val decision_name : decision -> string

type outcome = {
  request : Request.t;
  shard : int;
  epoch : int;
      (** logical epoch the request executed under: the tick index in
          barrier mode, the shard's snapshot epoch in epoch mode *)
  seq : int;  (** position within the shard's slice of that epoch *)
  phase : string;  (** {!Cutover.phase_name} at execution time *)
  decision : decision;
  shadowed : bool;  (** both sides ran and were compared *)
  verdict : Equivalence.verdict option;  (** [Some] iff [shadowed] *)
  divergent : bool;  (** verdict below the configured tolerance *)
  refused : bool;  (** conversion refused; served by the source *)
  served_trace : Io_trace.t;
  latency_us : float;
  done_at : float;
      (** completion stamp on the pool clock — lets an open-loop bench
          compute latency from the request's {e intended} arrival time
          rather than its service start, avoiding coordinated
          omission *)
  source_accesses : int;
  target_accesses : int;
}

(** Human-readable divergence context, naming the first differing
    event ([None] when the outcome did not diverge). *)
val divergence_detail : outcome -> string option

(** [judge ~tolerate_reordering reference observed] — the verdict plus
    whether it counts as a divergence at the configured tolerance
    ([Modulo_order] is tolerated by default; [Strict] tolerance flags
    any reordering). *)
val judge :
  tolerate_reordering:bool -> Io_trace.t -> Io_trace.t ->
  Equivalence.verdict * bool
