(** A request is one workload program arriving at the conversion
    service: the unit of serving, routing and shadow comparison.  Ids
    are dense and totally ordered — routing ([shard_of]) and canary
    placement ([canary_draw]) are pure functions of the id, never of
    the domain layout, which is what makes shard-parallel runs
    deterministic. *)

open Ccv_model
open Ccv_abstract

type t = {
  id : int;
  family : Ccv_workload.Generator.family;
  aprog : Aprog.t;  (** the request body, in access-pattern form *)
}

(** [stream ~seed schema ~sample ~n ()] — [n] requests drawn from
    {!Ccv_workload.Generator.batch} with ids [0..n-1].  With
    [?distinct:d], only [d] distinct programs are generated and cycled
    round-robin over the [n] ids — the steady-state regime of a real
    service, where most requests repeat a known program and a plan
    cache can serve them from compiled form. *)
val stream :
  seed:int -> Semantic.t -> sample:Sdb.t -> n:int ->
  ?mix:(int * Ccv_workload.Generator.family) list -> ?skew:float ->
  ?distinct:int -> unit -> t list

(** The shard that owns this request. *)
val shard_of : t -> nshards:int -> int

(** Deterministic uniform draw in [0, 1) for canary routing; depends
    only on [seed] and the request id. *)
val canary_draw : seed:int -> t -> float

val pp : Format.formatter -> t -> unit
