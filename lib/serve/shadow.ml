open Ccv_common
open Ccv_convert

type decision = Serve_source | Serve_target

let decision_name = function
  | Serve_source -> "source"
  | Serve_target -> "target"

type outcome = {
  request : Request.t;
  shard : int;
  epoch : int;
  seq : int;
  phase : string;
  decision : decision;
  shadowed : bool;
  verdict : Equivalence.verdict option;
  divergent : bool;
  refused : bool;
  served_trace : Io_trace.t;
  latency_us : float;
  done_at : float;  (* completion stamp on the pool clock *)
  source_accesses : int;
  target_accesses : int;
}

let judge ~tolerate_reordering reference observed =
  let verdict = Equivalence.compare_traces reference observed in
  let tolerance =
    if tolerate_reordering then Equivalence.Modulo_order else Equivalence.Strict
  in
  (verdict, not (Equivalence.verdict_at_least tolerance verdict))

let divergence_detail o =
  if not o.divergent then None
  else
    match o.verdict with
    | Some (Equivalence.Divergent why) -> Some why
    | Some Equivalence.Modulo_order ->
        Some "same events, different interleaving (strict tolerance)"
    | Some Equivalence.Strict | None -> None
