open Ccv_common
module G = Ccv_workload.Generator

type t = { id : int; family : G.family; aprog : Ccv_abstract.Aprog.t }

let stream ~seed schema ~sample ~n ?mix ?skew ?distinct () =
  let draw n = G.batch ~seed schema ~sample ~n ?mix ?skew () in
  match distinct with
  | None -> List.mapi (fun id (family, aprog) -> { id; family; aprog }) (draw n)
  | Some d ->
      (* steady-state workload: a fixed set of [d] programs cycled over
         [n] requests, the regime where a plan cache pays off *)
      let d = max 1 (min d n) in
      let pool = Array.of_list (draw d) in
      List.init n (fun id ->
          let family, aprog = pool.(id mod d) in
          { id; family; aprog })

let shard_of t ~nshards = t.id mod max 1 nshards

let canary_draw ~seed t =
  let rng = Prng.create ~seed:(seed + ((t.id + 1) * 0x2545F4914F6CDD1D)) in
  Prng.float rng 1.0

let pp ppf t =
  Fmt.pf ppf "#%d %a %s" t.id G.pp_family t.family t.aprog.Ccv_abstract.Aprog.name
