(** The phased-cutover state machine: the online half of a conversion
    that the paper's coexistence strategies (§2.1.2) presuppose.

    {v Shadow --> Canary p --> Cutover v}

    In [Shadow] every request is served by the source engine while the
    converted program also runs on the translated database and the two
    traces are compared.  In [Canary f] a deterministic fraction [f] of
    requests is served by the target (shadowing continues on every
    request).  In [Cutover] the target serves alone — no shadow runs,
    no observations, no further transitions.

    Promotion and rollback are driven by the divergence verdicts of
    shadowed requests, observed in request-id order: when the
    divergence rate over a sliding window exceeds the threshold the
    controller rolls back one phase ([Canary] to [Shadow], [Cutover]
    cannot roll back because it produces no observations — it is
    reached only through a clean canary); a rollback in [Shadow]
    aborts the conversion ([Aborted]) — the paper's "cannot be handled
    automatically" outcome, deferred to the conversion analyst.  The
    divergence thresholds are the operational reading of §5.2's
    "levels of successful conversion": a window that tolerates
    reordering accepts the [Modulo_order] level, a zero threshold
    demands strict equivalence. *)

type phase =
  | Shadow
  | Canary of float  (** fraction in [0, 1] served by the target *)
  | Cutover

val phase_name : phase -> string
val equal_phase : phase -> phase -> bool
val pp_phase : Format.formatter -> phase -> unit

type config = {
  canary_fraction : float;  (** target share during [Canary] *)
  window : int;  (** sliding window length, in shadowed requests *)
  min_observations : int;  (** rate is not judged on fewer *)
  max_divergence_rate : float;  (** rollback above this, in [0, 1] *)
  promote_after : int;
      (** consecutive clean shadowed requests that promote a phase *)
  initial : phase;
}

val default_config : config

type transition = {
  at_request : int;  (** id of the request whose verdict triggered it *)
  at_epoch : int;
      (** logical epoch of that request — tick index in barrier mode,
          snapshot epoch in epoch mode *)
  from_ : phase;
  to_ : phase;
  reason : string;
}

val pp_transition : Format.formatter -> transition -> unit

type status = Serving | Aborted

type t

val create : config -> t
val phase : t -> phase
val status : t -> status

(** Feed the shadow verdict of one request.  Callers must observe in
    logical [(epoch, shard, seq)] order for runs to be reproducible;
    [epoch] stamps any transition this verdict triggers. *)
val observe : t -> request_id:int -> epoch:int -> divergent:bool -> unit

(** Transitions so far, oldest first. *)
val transitions : t -> transition list

val observations : t -> int

(** The convergence gate.  While closed ([set_gate t false]) the
    machine still observes, rolls back and counts clean streaks, but
    never {e promotes} — live migration keeps it closed until every
    shard's backfill watermark provably covers its keyspace, so a
    partially-translated target can never serve.  Open by default. *)
val set_gate : t -> bool -> unit

(** Force a rollback to [Shadow] from any phase (recorded as a
    transition even when already there), used when migration itself
    fails — e.g. a backfill worker crash — and the target replicas can
    no longer be trusted.  No-op when [Aborted]. *)
val rollback_to_shadow : t -> at:int -> epoch:int -> reason:string -> unit
