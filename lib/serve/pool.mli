(** The serving loop: an OCaml 5 [Domain]-based worker pool over
    shards, driven tick by tick through the {!Cutover} state machine.

    Each tick takes the next [batch] requests in id order, routes them
    to their shards ([Request.shard_of]), executes every shard's slice
    on one of [domains] workers, then joins and feeds the shadow
    verdicts to the controller in request-id order.  Phase decisions
    therefore depend only on the request stream, the seed and the
    shard count — never on the domain count or scheduling — which is
    what makes runs reproducible: the same stream under 1 domain and
    under 8 yields the same transitions, divergence counts and served
    output. *)

open Ccv_model
open Ccv_convert

type config = {
  domains : int;  (** worker domains; 1 = run inline *)
  shards : int;  (** replica pairs; fixes routing, so keep it stable *)
  batch : int;  (** requests per tick (phase decisions happen between) *)
  canary_seed : int;  (** seed for deterministic canary routing *)
  tolerate_reordering : bool;
      (** accept [Modulo_order] (§5.2's weaker level); [false] demands
          strict trace equality *)
  use_plan_cache : bool;
      (** serve through per-shard compiled plan caches
          ({!Shard.create}); [false] re-converts and re-interprets
          every request, the pre-compilation behaviour *)
}

val default_config : config

type divergence = {
  div_request : int;  (** request id *)
  div_program : string;
  div_phase : string;
  div_shard : int;
  detail : string;  (** names the first differing event *)
}

type report = {
  outcomes : Shadow.outcome list;  (** all served requests, id order *)
  transitions : Cutover.transition list;
  divergences : divergence list;
  final_phase : Cutover.phase;
  status : Cutover.status;
  metrics : Metrics.t;
  plan_stats : Ccv_plan.Plan_cache.stats;
      (** per-shard plan-cache counters summed over the pool; all zero
          when [use_plan_cache] is off *)
  served : int;
  unserved : int;  (** requests dropped by an abort *)
  wall_s : float;
}

(** [run ~config ~cutover req sdb requests] — [req] describes the
    conversion (source schema/model, restructuring ops, target model);
    [sdb] is the semantic instance every shard replicates.  [Error _]
    when a shard's replica pair cannot be prepared. *)
val run :
  ?config:config ->
  cutover:Cutover.config ->
  Supervisor.request ->
  Sdb.t ->
  Request.t list ->
  (report, string) result

(** Transition log, divergence head and metrics tables as one
    printable block. *)
val render : report -> string
