(** The serving loop: a persistent OCaml 5 [Domain] worker pool over
    shards, driven tick by tick through the {!Cutover} state machine.

    The pool ({!Ccv_common.Workpool}) is spawned once per {!run} —
    [domains - 1] long-lived worker domains plus the caller — and the
    same workers serve every tick, prepare the shard replicas and chunk
    the bulk data translation; nothing is spawned per tick.  Each tick
    takes the next [batch] requests in id order, routes them to their
    shards ([Request.shard_of]), executes shard [s]'s slice on worker
    [s mod domains], parks the workers at the tick barrier, then feeds
    the shadow verdicts to the controller in request-id order.  Phase
    decisions therefore depend only on the request stream, the seed and
    the shard count — never on the domain count or scheduling — which
    is what makes runs reproducible: the same stream under 1 domain and
    under 8 yields the same transitions, divergence counts and served
    output.

    Workers stage their access charges in per-worker
    {!Ccv_common.Counters.local} buffers (plain mutable ints, no
    atomics); the coordinator folds them into the phase's live counter
    at the tick barrier, so the request hot path shares no counter
    cache line between domains.

    A worker never lets an exception escape into the pool.  Faults are
    caught next to the failing request and surfaced as [Error] from
    {!run}, naming the shard and the smallest failing request id —
    deterministic regardless of which worker slot hit its fault
    first. *)

open Ccv_model
open Ccv_convert

type config = {
  domains : int;  (** worker domains in the pool; capped at [shards] *)
  shards : int;  (** replica pairs; fixes routing, so keep it stable *)
  batch : int;  (** requests per tick (phase decisions happen between) *)
  canary_seed : int;  (** seed for deterministic canary routing *)
  tolerate_reordering : bool;
      (** accept [Modulo_order] (§5.2's weaker level); [false] demands
          strict trace equality *)
  use_plan_cache : bool;
      (** serve through per-shard compiled plan caches
          ({!Shard.create}); [false] re-converts and re-interprets
          every request, the pre-compilation behaviour *)
  fail_request : int option;
      (** fault injection: the worker executing this request id raises
          instead, exercising the crash-propagation path ([Error] from
          {!run}).  [None] (the default) in production *)
}

val default_config : config

type divergence = {
  div_request : int;  (** request id *)
  div_program : string;
  div_phase : string;
  div_shard : int;
  detail : string;  (** names the first differing event *)
}

type report = {
  outcomes : Shadow.outcome list;  (** all served requests, id order *)
  transitions : Cutover.transition list;
  divergences : divergence list;
  final_phase : Cutover.phase;
  status : Cutover.status;
  metrics : Metrics.t;
  plan_stats : Ccv_plan.Plan_cache.stats;
      (** per-shard plan-cache counters summed over the pool; all zero
          when [use_plan_cache] is off *)
  served : int;
  unserved : int;  (** requests dropped by an abort *)
  domains : int;  (** worker slots actually used (after the shard cap) *)
  pool_idle_s : float;
      (** cumulative seconds workers spent parked at the tick barrier —
          the load-imbalance signal the bench reports *)
  wall_s : float;
}

(** [run ~config ~cutover req sdb requests] — [req] describes the
    conversion (source schema/model, restructuring ops, target model);
    [sdb] is the semantic instance every shard replicates.  [Error _]
    when a shard's replica pair cannot be prepared, or when a worker
    fault (see [fail_request]) interrupts serving. *)
val run :
  ?config:config ->
  cutover:Cutover.config ->
  Supervisor.request ->
  Sdb.t ->
  Request.t list ->
  (report, string) result

(** Transition log, divergence head and metrics tables as one
    printable block. *)
val render : report -> string
