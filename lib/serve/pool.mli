(** The serving loop: a persistent OCaml 5 [Domain] worker pool over
    shards, in one of two synchronization modes.

    {b Tick barrier} ([epoch_serving = false]): each tick takes the
    next [batch] requests in id order, routes them to their shards
    ([Request.shard_of]), executes shard [s]'s slice on worker
    [s mod domains], parks the workers at the tick barrier, then feeds
    the shadow verdicts to the controller in request-id order.

    {b Epoch serving} ([epoch_serving = true], the default): no
    barrier at all.  Each shard's slice of the stream is chunked into
    {e epoch rows} of [epoch_batch] requests; the worker owning a
    shard executes its rows strictly in epoch order and publishes each
    finished row through a per-shard single-producer mailbox
    ({!Ccv_common.Snapshot}).  The coordinator reassembles the rows in
    an {!Ccv_common.Epoch} reorder buffer and consumes them in
    canonical [(epoch, shard, seq)] order; the phase a row executes
    under is pre-committed through published atomic cells, [epoch_lag]
    rows ahead of the controller.  Workers never block on each other —
    a fast shard runs ahead of a slow one instead of parking at a
    barrier, which is where the idle seconds the bench measures go.

    Either way, phase decisions depend only on the request stream, the
    seed, and the shard count — never on the domain count or physical
    scheduling — so the same stream under 1 domain and under 8 yields
    the same transitions, divergence log and served output.  Epoch
    mode trades the per-tick controller cadence for a per-row one, so
    the two modes may transition at different request ids; within a
    mode, runs are bit-for-bit reproducible.

    Workers stage their access charges in per-worker
    {!Ccv_common.Counters.local} buffers (plain mutable ints, no
    atomics).  At a tick barrier the coordinator folds them into the
    phase's live counter; under epoch serving it charges the live
    counter per consumed outcome instead.  Either way the request hot
    path shares no counter cache line between domains.

    A worker never lets an exception escape into the pool.  Faults are
    caught next to the failing request and surfaced as [Error] from
    {!run}, naming the shard and the smallest failing request id of
    the earliest faulty row — deterministic regardless of which worker
    slot hit its fault first. *)

open Ccv_model
open Ccv_convert

type config = {
  domains : int;  (** worker domains in the pool; capped at [shards] *)
  shards : int;  (** replica pairs; fixes routing, so keep it stable *)
  batch : int;  (** requests per tick (barrier mode only) *)
  canary_seed : int;  (** seed for deterministic canary routing *)
  tolerate_reordering : bool;
      (** accept [Modulo_order] (§5.2's weaker level); [false] demands
          strict trace equality *)
  use_plan_cache : bool;
      (** serve through per-shard compiled plan caches
          ({!Shard.create}); [false] re-converts and re-interprets
          every request, the pre-compilation behaviour *)
  fail_request : int option;
      (** fault injection: the worker executing this request id raises
          instead, exercising the crash-propagation path ([Error] from
          {!run}).  [None] (the default) in production *)
  epoch_serving : bool;  (** barrier-free snapshot serving (default) *)
  epoch_batch : int;
      (** requests per shard per epoch row (epoch mode only) *)
  epoch_lag : int;
      (** how many rows ahead of the controller the phase plan is
          published — the pipeline depth; clamped to at least 1 *)
  steal : bool;
      (** epoch mode only: schedule epoch rows through a work-stealing
          deque ({!Ccv_common.Stealqueue}) instead of pinning shard [s]
          to worker [s mod domains].  Shard cursors circulate as
          tokens; any idle slot — the coordinator included — claims the
          next ready row regardless of shard, so a hot shard's backlog
          migrates to whoever has cycles.  Results still flow through
          the reorder buffer, so outcomes, transitions and divergence
          logs are bit-identical to the pinned schedule at any domain
          count.  Default [true]. *)
  split_threshold : int;
      (** with [steal], rows longer than this many requests are split
          into sub-rows executed by successive token holders and
          re-merged inside the reorder buffer ({!Ccv_common.Epoch}
          [publish_sub]) — several workers pipeline one hot shard's
          row.  [0] (the default) disables splitting. *)
  live_migration : bool;
      (** serve while migrating: shards start with an {e empty} target
          replica ({!Shard.create} [~live]) that fills by per-request
          fault-in, deterministic backfill between logical rows, and
          dual-applied writes ({!Ccv_migrate.Migrate}).  The first
          request is served without waiting for any bulk translation;
          the controller's promotion gate stays closed until every
          shard's backfill schedule provably covers its keyspace.
          Requires [cutover.initial = Shadow]. *)
  backfill_batch : int;
      (** pending records drained per shard per logical row (tick or
          epoch row) during live migration *)
  backfill_lag : int;
      (** logical rows served before backfill starts — keeps the very
          first responses free of drain work *)
  fail_backfill : (int * int) option;
      (** fault injection: backfill on shard [fst] fails when its scan
          crosses slot [snd].  Unlike [fail_request] this does {e not}
          error the run: the pool rolls the controller back to Shadow,
          closes the gate, and serves the rest of the stream from the
          source replicas alone.  [None] in production *)
  fingerprint_replicas : bool;
      (** compute {!report.replica_fingerprint} after serving (walks
          every target replica — meant for tests, not production) *)
  cost_based_plans : bool;
      (** optimize every compiled pair under a per-shard cardinality
          snapshot ({!Ccv_plan.Stats}): equality conjuncts ordered by
          observed selectivity, cached plans tagged with the snapshot
          fingerprint ({!Shard.create} [~cost_based]) *)
  stats_every : int;
      (** with [cost_based_plans], re-observe each shard's live target
          replica every N requests and flush/recost its plan cache
          when counts drift past [drift_threshold]; [0] disables the
          periodic check *)
  drift_threshold : float;
      (** largest tolerated relative count change before cached plans
          are considered stale (default [0.5]) *)
}

val default_config : config

type divergence = {
  div_request : int;  (** request id *)
  div_program : string;
  div_phase : string;
  div_shard : int;
  div_epoch : int;  (** logical epoch (tick index in barrier mode) *)
  div_seq : int;  (** rank within the shard's slice of that epoch *)
  detail : string;  (** names the first differing event *)
}

(** Per-slot steal-scheduler activity. *)
type slot_steal = {
  sub_rows_run : int;  (** sub-rows this slot executed *)
  stolen : int;  (** claims served by stealing another slot's token *)
  split_frags : int;  (** executed sub-rows that were split fragments *)
}

type report = {
  outcomes : Shadow.outcome list;
      (** all served requests, in consumption order: request-id order
          per tick (barrier mode) or canonical [(epoch, shard, seq)]
          order (epoch mode) *)
  transitions : Cutover.transition list;
  divergences : divergence list;
  final_phase : Cutover.phase;
  status : Cutover.status;
  metrics : Metrics.t;
  plan_stats : Ccv_plan.Plan_cache.stats;
      (** per-shard plan-cache counters summed over the pool; all zero
          when [use_plan_cache] is off *)
  served : int;
  unserved : int;  (** requests dropped by an abort *)
  domains : int;  (** worker slots actually used (after the shard cap) *)
  epoch_serving : bool;  (** which mode produced this report *)
  pool_idle_s : float;
      (** cumulative seconds workers spent not serving — parked at the
          tick barrier, or (epoch mode) sleeping on an unpublished
          phase cell.  The coordination-overhead signal the bench
          compares across the two modes. *)
  worker_idle_s : float list;
      (** the same, per worker slot (slot 0 is the coordinator) — the
          skew between slots is the load-imbalance signal.  Slots the
          epoch scheduler left dark (beyond the hardware domain count)
          report 0. *)
  steal_wait_s : float list;
      (** per-slot seconds spent probing beyond the local deque (a
          claim that stole, or came up empty) — separated from idle:
          a slot hunting for work is load-shedding, not starved *)
  steal_stats : slot_steal list option;
      (** per-slot scheduler activity; [None] outside steal mode *)
  index_advice : string list;
      (** serving-time {!Ccv_convert.Advisor.index_suggestions} under
          the statistics current plans are costed under (drift-rebased
          when [stats_every] fired): concrete [Sdb.ensure_index] calls
          for hot equalities still served by scans, deduplicated over
          the stream's distinct programs.  Empty without
          [cost_based_plans]. *)
  prepare_s : float;
      (** seconds from the start of [run] until the pool could serve
          its first request — bulk replica preparation, or the (cheap)
          live-migration setup.  Separate from [wall_s], which clocks
          serving only: the stop-the-world cost live migration removes
          is exactly this number. *)
  wall_s : float;
  migration : Ccv_migrate.Migrate.summary option;
      (** pool-wide live-migration tallies (slots, fault-ins,
          backfills, merge warnings, first failure); [None] unless
          [live_migration] *)
  replica_fingerprint : string option;
      (** digest over the per-shard canonical target-replica
          fingerprints ({!Ccv_migrate.Migrate.fingerprint_target}), in
          shard order — equal across serving modes, domain counts and
          eager/lazy preparation for the same stream; [None] unless
          [fingerprint_replicas] *)
}

(** [run ~config ~cutover req sdb requests] — [req] describes the
    conversion (source schema/model, restructuring ops, target model);
    [sdb] is the semantic instance every shard replicates.  [Error _]
    when a shard's replica pair cannot be prepared, or when a worker
    fault (see [fail_request]) interrupts serving. *)
val run :
  ?config:config ->
  cutover:Cutover.config ->
  Supervisor.request ->
  Sdb.t ->
  Request.t list ->
  (report, string) result

(** Transition log, divergence head and metrics tables as one
    printable block. *)
val render : report -> string
