open Ccv_common
open Ccv_convert
open Ccv_migrate
open Ccv_plan

(* One compiled serving pair: the source program lowered to closures,
   and either the converted target likewise compiled or the conversion
   refusal (cached too — a program the Supervisor refuses once it will
   refuse every time the fingerprint is unchanged). *)
type entry = {
  csrc : Engines.compiled_program;
  ctgt : (Engines.compiled_program, string * string) result;
}

type t = {
  shard_id : int;
  servable : Supervisor.servable;
  mutable source_db : Engines.database;
  mutable target_db : Engines.database;
  use_plan_cache : bool;
  fingerprint : string;
  cache : (Ccv_abstract.Aprog.t, (entry, string * string) result) Plan_cache.t;
  migration : Migrate.t option;
}

let id t = t.shard_id
let warnings t = t.servable.Supervisor.warnings
let plan_stats t = Plan_cache.stats t.cache
let migration t = t.migration
let target_database t = t.target_db

let create ~id ?pool ?(use_plan_cache = true) ?live req sdb =
  match live with
  | None -> (
      match Supervisor.prepare_serving ?pool req sdb with
      | Error (stage, reason) -> Error (stage ^ ": " ^ reason)
      | Ok servable ->
          Ok
            { shard_id = id;
              servable;
              source_db = servable.Supervisor.source_db;
              target_db = servable.Supervisor.target_db;
              use_plan_cache;
              fingerprint = Supervisor.serving_fingerprint req;
              cache = Plan_cache.create ();
              migration = None;
            })
  | Some mconfig -> (
      (* Live migration: source replica only; the target starts empty
         and fills by fault-in and backfill — no bulk translation in
         front of the first request. *)
      match Migrate.start ~config:mconfig ~shard_id:id req sdb with
      | Error (stage, reason) -> Error (stage ^ ": " ^ reason)
      | Ok (m, servable) ->
          Ok
            { shard_id = id;
              servable;
              source_db = servable.Supervisor.source_db;
              target_db = Migrate.engine_db m;
              use_plan_cache;
              fingerprint = Supervisor.serving_fingerprint req;
              cache = Plan_cache.create ();
              migration = Some m;
            })

(* Advance this shard's backfill watermark (no-op without live
   migration or after a migration failure). *)
let backfill_to t ~to_ =
  match t.migration with
  | None -> ()
  | Some m ->
      Migrate.sync_engine_db m t.target_db;
      Migrate.backfill_to m ~to_;
      t.target_db <- Migrate.engine_db m

let migration_failed t =
  match t.migration with None -> None | Some m -> Migrate.failed m

let run_source t program input =
  let r = Engines.run ~input t.source_db program in
  t.source_db <- r.Engines.final_db;
  r

let run_target t program input =
  let r = Engines.run ~input t.target_db program in
  t.target_db <- r.Engines.final_db;
  r

let run_source_compiled t cp input =
  let r = Engines.run_compiled ~input t.source_db cp in
  t.source_db <- r.Engines.final_db;
  r

let run_target_compiled t cp input =
  let r = Engines.run_compiled ~input t.target_db cp in
  t.target_db <- r.Engines.final_db;
  r

(* What the shard will actually execute for a request: nothing (the
   request cannot even be generated), the source side alone (conversion
   refused), or both sides.  The thunks close over the mutable replica
   pair so execution order stays exactly as before. *)
type resolved =
  | Refused
  | Fallback of (unit -> Engines.run_result)
  | Pair of (unit -> Engines.run_result) * (unit -> Engines.run_result)

let resolve t ~epoch aprog =
  if t.use_plan_cache then
    let compiled =
      Plan_cache.find_or_compile t.cache ~fingerprint:t.fingerprint aprog
        ~compile:(fun aprog ->
          match Supervisor.serve_pair ~at_epoch:epoch t.servable aprog with
          | Error e -> Error e
          | Ok { Supervisor.source_program; target_program; pair_issues = _ }
            ->
              Ok
                { csrc = Engines.compile source_program;
                  ctgt = Result.map Engines.compile target_program;
                })
    in
    match compiled with
    | Error _ -> Refused
    | Ok { csrc; ctgt = Error _ } ->
        Fallback (fun () -> run_source_compiled t csrc [])
    | Ok { csrc; ctgt = Ok ctgt } ->
        Pair
          ( (fun () -> run_source_compiled t csrc []),
            fun () -> run_target_compiled t ctgt [] )
  else
    match Supervisor.serve_pair ~at_epoch:epoch t.servable aprog with
    | Error _ -> Refused
    | Ok { Supervisor.source_program; target_program = Error _; _ } ->
        Fallback (fun () -> run_source t source_program [])
    | Ok { Supervisor.source_program; target_program = Ok tp; _ } ->
        Pair
          ( (fun () -> run_source t source_program []),
            fun () -> run_target t tp [] )

let exec t ~phase ~tolerate_reordering ~canary_seed ?(migration_ok = true)
    ~live ~clock ~epoch ~seq request =
  let t0 = clock () in
  (* Live migration: admit, then fault in everything the request may
     touch before it runs, so the dual-run never sees a
     partially-translated extent.  Admission is the analyzer's static
     depth check — a request navigating past the demand-closure hop
     cap is refused up front (source-only, counted as refused, the
     offending access path recorded in the migration warnings) instead
     of failing mid-migration.  The fault-in time lands in this
     request's latency — the cost the migration bench measures.  Once
     migration has failed (here, on another row, or globally via
     [migration_ok = false] from the coordinator's plan), the target
     replica is no longer maintained and the shard serves
     source-only. *)
  let admission =
    match t.migration with
    | None -> `Active
    | Some m ->
        if (not migration_ok) || Migrate.failed m <> None then `Inactive
        else begin
          match Migrate.admit request.Request.aprog with
          | Error d ->
              Migrate.note_refusal m d;
              `Refused
          | Ok () ->
              Migrate.sync_engine_db m t.target_db;
              (try ignore (Migrate.prepare_request m request.Request.aprog)
               with e -> Migrate.mark_failed m (Printexc.to_string e));
              t.target_db <- Migrate.engine_db m;
              if Migrate.failed m = None then `Active else `Inactive
        end
  in
  let phase_name = Cutover.phase_name phase in
  let finish ~decision ~shadowed ~verdict ~divergent ~refused ~served_trace
      ~source_accesses ~target_accesses =
    Counters.local_record_reads live (source_accesses + target_accesses);
    Counters.local_record_write live;
    { Shadow.request;
      shard = t.shard_id;
      epoch;
      seq;
      phase = phase_name;
      decision;
      shadowed;
      verdict;
      divergent;
      refused;
      served_trace;
      latency_us = (clock () -. t0) *. 1e6;
      source_accesses;
      target_accesses;
    }
  in
  match resolve t ~epoch request.Request.aprog with
  | Refused ->
      (* Not even a source program: nothing to run, count the refusal. *)
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:true ~served_trace:[] ~source_accesses:0
        ~target_accesses:0
  | Fallback run_src ->
      (* Conversion refused: fall back to the source engine in any
         phase (during cutover this is the residual legacy path). *)
      let r = run_src () in
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:true ~served_trace:r.Engines.trace
        ~source_accesses:r.Engines.accesses ~target_accesses:0
  | Pair (run_src, run_tgt) when admission = `Refused ->
      ignore run_tgt;
      (* Admission refused the request's navigation depth: serve the
         source engine alone and count the refusal — the target
         replica stays consistent because nothing was faulted in. *)
      let r = run_src () in
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:true ~served_trace:r.Engines.trace
        ~source_accesses:r.Engines.accesses ~target_accesses:0
  | Pair (run_src, run_tgt) when admission = `Inactive ->
      ignore run_tgt;
      (* Migration rolled back: the target replica is stale, serve the
         source engine alone without shadowing. *)
      let r = run_src () in
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:false ~served_trace:r.Engines.trace
        ~source_accesses:r.Engines.accesses ~target_accesses:0
  | Pair (run_src, run_tgt) -> (
      match phase with
      | Cutover ->
          let r = run_tgt () in
          finish ~decision:Shadow.Serve_target ~shadowed:false ~verdict:None
            ~divergent:false ~refused:false ~served_trace:r.Engines.trace
            ~source_accesses:0 ~target_accesses:r.Engines.accesses
      | Shadow | Canary _ ->
          let decision =
            match phase with
            | Canary f when Request.canary_draw ~seed:canary_seed request < f
              ->
                Shadow.Serve_target
            | Shadow | Canary _ | Cutover -> Shadow.Serve_source
          in
          let sr = run_src () in
          let tr = run_tgt () in
          let verdict, divergent =
            Shadow.judge ~tolerate_reordering sr.Engines.trace tr.Engines.trace
          in
          let served_trace =
            match decision with
            | Shadow.Serve_source -> sr.Engines.trace
            | Shadow.Serve_target -> tr.Engines.trace
          in
          finish ~decision ~shadowed:true ~verdict:(Some verdict) ~divergent
            ~refused:false ~served_trace
            ~source_accesses:sr.Engines.accesses
            ~target_accesses:tr.Engines.accesses)
