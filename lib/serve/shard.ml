open Ccv_common
open Ccv_convert

type t = {
  shard_id : int;
  servable : Supervisor.servable;
  mutable source_db : Engines.database;
  mutable target_db : Engines.database;
}

let id t = t.shard_id
let warnings t = t.servable.Supervisor.warnings

let create ~id req sdb =
  match Supervisor.prepare_serving req sdb with
  | Error (stage, reason) -> Error (stage ^ ": " ^ reason)
  | Ok servable ->
      Ok
        { shard_id = id;
          servable;
          source_db = servable.Supervisor.source_db;
          target_db = servable.Supervisor.target_db;
        }

let run_source t program input =
  let r = Engines.run ~input t.source_db program in
  t.source_db <- r.Engines.final_db;
  r

let run_target t program input =
  let r = Engines.run ~input t.target_db program in
  t.target_db <- r.Engines.final_db;
  r

let exec t ~phase ~tolerate_reordering ~canary_seed ~live ~clock request =
  let t0 = clock () in
  let phase_name = Cutover.phase_name phase in
  let finish ~decision ~shadowed ~verdict ~divergent ~refused ~served_trace
      ~source_accesses ~target_accesses =
    Counters.record_reads live (source_accesses + target_accesses);
    Counters.record_write live;
    { Shadow.request;
      shard = t.shard_id;
      phase = phase_name;
      decision;
      shadowed;
      verdict;
      divergent;
      refused;
      served_trace;
      latency_us = (clock () -. t0) *. 1e6;
      source_accesses;
      target_accesses;
    }
  in
  match Supervisor.serve_pair t.servable request.Request.aprog with
  | Error _ ->
      (* Not even a source program: nothing to run, count the refusal. *)
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:true ~served_trace:[] ~source_accesses:0
        ~target_accesses:0
  | Ok { Supervisor.source_program; target_program; pair_issues = _ } -> (
      match target_program with
      | Error _ ->
          (* Conversion refused: fall back to the source engine in any
             phase (during cutover this is the residual legacy path). *)
          let r = run_source t source_program [] in
          finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
            ~divergent:false ~refused:true ~served_trace:r.Engines.trace
            ~source_accesses:r.Engines.accesses ~target_accesses:0
      | Ok target_program -> (
          match phase with
          | Cutover ->
              let r = run_target t target_program [] in
              finish ~decision:Shadow.Serve_target ~shadowed:false ~verdict:None
                ~divergent:false ~refused:false ~served_trace:r.Engines.trace
                ~source_accesses:0 ~target_accesses:r.Engines.accesses
          | Shadow | Canary _ ->
              let decision =
                match phase with
                | Canary f
                  when Request.canary_draw ~seed:canary_seed request < f ->
                    Shadow.Serve_target
                | Shadow | Canary _ | Cutover -> Shadow.Serve_source
              in
              let sr = run_source t source_program [] in
              let tr = run_target t target_program [] in
              let verdict, divergent =
                Shadow.judge ~tolerate_reordering sr.Engines.trace
                  tr.Engines.trace
              in
              let served_trace =
                match decision with
                | Shadow.Serve_source -> sr.Engines.trace
                | Shadow.Serve_target -> tr.Engines.trace
              in
              finish ~decision ~shadowed:true ~verdict:(Some verdict)
                ~divergent ~refused:false ~served_trace
                ~source_accesses:sr.Engines.accesses
                ~target_accesses:tr.Engines.accesses))
