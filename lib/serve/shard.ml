open Ccv_common
open Ccv_convert
open Ccv_migrate
open Ccv_plan
module Semantic = Ccv_model.Semantic
module Sdb = Ccv_model.Sdb

(* One compiled serving pair: the source program lowered to closures,
   and either the converted target likewise compiled or the conversion
   refusal (cached too — a program the Supervisor refuses once it will
   refuse every time the fingerprint is unchanged). *)
type entry = {
  csrc : Engines.compiled_program;
  ctgt : (Engines.compiled_program, string * string) result;
}

type t = {
  shard_id : int;
  servable : Supervisor.servable;
  target_semantic : Semantic.t;
  mutable source_db : Engines.database;
  mutable target_db : Engines.database;
  use_plan_cache : bool;
  cost_based : bool;
  stats_every : int;  (** observe cardinalities every N requests; 0 = never *)
  drift_threshold : float;
  fingerprint : string;  (** serving (schema/ops/models) part *)
  mutable stats : Stats.t option;
      (** baseline snapshot the cached generation was costed under *)
  mutable requests_seen : int;
  cache : (Ccv_abstract.Aprog.t, (entry, string * string) result) Plan_cache.t;
  migration : Migrate.t option;
}

let id t = t.shard_id
let warnings t = t.servable.Supervisor.warnings
let plan_stats t = Plan_cache.stats t.cache
let migration t = t.migration
let target_database t = t.target_db
let baseline_stats t = t.stats

(* Cached plans depend on the serving definition AND, under cost-based
   selection, on the statistics they were costed with: the combined
   tag makes a statistics rebase flush the generation through the
   plan cache's ordinary fingerprint discipline. *)
let effective_fingerprint t =
  match t.stats with
  | None -> t.fingerprint
  | Some st -> t.fingerprint ^ ":" ^ Stats.fingerprint st

let create ~id ?pool ?(use_plan_cache = true) ?(cost_based = false)
    ?(stats_every = 0) ?(drift_threshold = 0.5) ?live req sdb =
  let finish servable target_semantic target_db migration =
    let stats =
      if cost_based then
        (* Baseline from the semantic instance in hand: the translated
           one when bulk translation ran, the source instance under
           live migration (the target fills toward the same counts). *)
        let snapshot_of =
          match migration with
          | None -> servable.Supervisor.translated
          | Some _ -> sdb
        in
        Some (Stats.of_sdb snapshot_of)
      else None
    in
    { shard_id = id;
      servable;
      target_semantic;
      source_db = servable.Supervisor.source_db;
      target_db;
      use_plan_cache;
      cost_based;
      stats_every;
      drift_threshold;
      fingerprint = Supervisor.serving_fingerprint req;
      stats;
      requests_seen = 0;
      cache = Plan_cache.create ();
      migration;
    }
  in
  match live with
  | None -> (
      match Supervisor.prepare_serving ?pool req sdb with
      | Error (stage, reason) -> Error (stage ^ ": " ^ reason)
      | Ok servable ->
          Ok
            (finish servable
               (Sdb.schema servable.Supervisor.translated)
               servable.Supervisor.target_db None))
  | Some mconfig -> (
      (* Live migration: source replica only; the target starts empty
         and fills by fault-in and backfill — no bulk translation in
         front of the first request. *)
      match Migrate.start ~config:mconfig ~shard_id:id req sdb with
      | Error (stage, reason) -> Error (stage ^ ": " ^ reason)
      | Ok (m, servable) ->
          let target_semantic =
            match Ccv_transform.Schema_change.apply_all req.Supervisor.source_schema
                    req.Supervisor.ops with
            | Ok s -> s
            | Error _ -> req.Supervisor.source_schema
          in
          Ok (finish servable target_semantic (Migrate.engine_db m) (Some m)))

(* Advance this shard's backfill watermark (no-op without live
   migration or after a migration failure). *)
let backfill_to t ~to_ =
  match t.migration with
  | None -> ()
  | Some m ->
      Migrate.sync_engine_db m t.target_db;
      Migrate.backfill_to m ~to_;
      t.target_db <- Migrate.engine_db m

let migration_failed t =
  match t.migration with None -> None | Some m -> Migrate.failed m

(* Periodic statistics observation: every [stats_every] requests (and
   only once migration is complete — a filling extent is drift by
   construction), rebuild a count snapshot from the live target
   replica and compare against the baseline the cached generation was
   costed under.  Past the threshold, flush the generation via
   [note_drift] and rebase: the next request recompiles under the new
   combined fingerprint.  Deterministic per shard — the trigger is the
   shard-local request counter, not wall-clock. *)
let check_drift t =
  t.requests_seen <- t.requests_seen + 1;
  if
    t.cost_based && t.stats_every > 0
    && t.requests_seen mod t.stats_every = 0
    && (match t.migration with
       | None -> true
       | Some m -> Migrate.failed m = None && Migrate.n_done m >= Migrate.total m)
  then
    match t.stats with
    | None -> ()
    | Some baseline ->
        let observed = Engines.observed_stats t.target_semantic t.target_db in
        (* hierarchical targets expose no counts: snapshot is empty,
           drift stays inert *)
        if observed.Stats.entities <> [] then
          if Stats.drift ~baseline ~observed > t.drift_threshold then begin
            Plan_cache.note_drift t.cache;
            t.stats <- Some observed
          end

let run_source t program input =
  let r = Engines.run ~input t.source_db program in
  t.source_db <- r.Engines.final_db;
  r

let run_target t program input =
  let r = Engines.run ~input t.target_db program in
  t.target_db <- r.Engines.final_db;
  r

let run_source_compiled t cp input =
  let r = Engines.run_compiled ~input t.source_db cp in
  t.source_db <- r.Engines.final_db;
  r

let run_target_compiled t cp input =
  let r = Engines.run_compiled ~input t.target_db cp in
  t.target_db <- r.Engines.final_db;
  r

(* What the shard will actually execute for a request: nothing (the
   request cannot even be generated), the source side alone (conversion
   refused), or both sides.  The thunks close over the mutable replica
   pair so execution order stays exactly as before. *)
type resolved =
  | Refused
  | Fallback of (unit -> Engines.run_result)
  | Pair of (unit -> Engines.run_result) * (unit -> Engines.run_result)

let resolve t ~epoch aprog =
  let stats = if t.cost_based then t.stats else None in
  if t.use_plan_cache then
    let compiled =
      Plan_cache.find_or_compile t.cache ~fingerprint:(effective_fingerprint t)
        aprog
        ~compile:(fun aprog ->
          match Supervisor.serve_pair ~at_epoch:epoch ?stats t.servable aprog with
          | Error e -> Error e
          | Ok { Supervisor.source_program; target_program; pair_issues = _ }
            ->
              Ok
                { csrc = Engines.compile source_program;
                  ctgt = Result.map Engines.compile target_program;
                })
    in
    match compiled with
    | Error _ -> Refused
    | Ok { csrc; ctgt = Error _ } ->
        Fallback (fun () -> run_source_compiled t csrc [])
    | Ok { csrc; ctgt = Ok ctgt } ->
        Pair
          ( (fun () -> run_source_compiled t csrc []),
            fun () -> run_target_compiled t ctgt [] )
  else
    match Supervisor.serve_pair ~at_epoch:epoch ?stats t.servable aprog with
    | Error _ -> Refused
    | Ok { Supervisor.source_program; target_program = Error _; _ } ->
        Fallback (fun () -> run_source t source_program [])
    | Ok { Supervisor.source_program; target_program = Ok tp; _ } ->
        Pair
          ( (fun () -> run_source t source_program []),
            fun () -> run_target t tp [] )

let exec t ~phase ~tolerate_reordering ~canary_seed ?(migration_ok = true)
    ~live ~clock ~epoch ~seq request =
  let t0 = clock () in
  check_drift t;
  (* Live migration: admit, then fault in everything the request may
     touch before it runs, so the dual-run never sees a
     partially-translated extent.  Admission is the analyzer's static
     depth check — a request navigating past the demand-closure hop
     cap is refused up front (source-only, counted as refused, the
     offending access path recorded in the migration warnings) instead
     of failing mid-migration.  The fault-in time lands in this
     request's latency — the cost the migration bench measures.  Once
     migration has failed (here, on another row, or globally via
     [migration_ok = false] from the coordinator's plan), the target
     replica is no longer maintained and the shard serves
     source-only. *)
  let admission =
    match t.migration with
    | None -> `Active
    | Some m ->
        if (not migration_ok) || Migrate.failed m <> None then `Inactive
        else begin
          match Migrate.admit request.Request.aprog with
          | Error d ->
              Migrate.note_refusal m d;
              `Refused
          | Ok () ->
              Migrate.sync_engine_db m t.target_db;
              (try ignore (Migrate.prepare_request m request.Request.aprog)
               with e -> Migrate.mark_failed m (Printexc.to_string e));
              t.target_db <- Migrate.engine_db m;
              if Migrate.failed m = None then `Active else `Inactive
        end
  in
  let phase_name = Cutover.phase_name phase in
  let finish ~decision ~shadowed ~verdict ~divergent ~refused ~served_trace
      ~source_accesses ~target_accesses =
    Counters.local_record_reads live (source_accesses + target_accesses);
    Counters.local_record_write live;
    let tdone = clock () in
    { Shadow.request;
      shard = t.shard_id;
      epoch;
      seq;
      phase = phase_name;
      decision;
      shadowed;
      verdict;
      divergent;
      refused;
      served_trace;
      latency_us = (tdone -. t0) *. 1e6;
      done_at = tdone;
      source_accesses;
      target_accesses;
    }
  in
  match resolve t ~epoch request.Request.aprog with
  | Refused ->
      (* Not even a source program: nothing to run, count the refusal. *)
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:true ~served_trace:[] ~source_accesses:0
        ~target_accesses:0
  | Fallback run_src ->
      (* Conversion refused: fall back to the source engine in any
         phase (during cutover this is the residual legacy path). *)
      let r = run_src () in
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:true ~served_trace:r.Engines.trace
        ~source_accesses:r.Engines.accesses ~target_accesses:0
  | Pair (run_src, run_tgt) when admission = `Refused ->
      ignore run_tgt;
      (* Admission refused the request's navigation depth: serve the
         source engine alone and count the refusal — the target
         replica stays consistent because nothing was faulted in. *)
      let r = run_src () in
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:true ~served_trace:r.Engines.trace
        ~source_accesses:r.Engines.accesses ~target_accesses:0
  | Pair (run_src, run_tgt) when admission = `Inactive ->
      ignore run_tgt;
      (* Migration rolled back: the target replica is stale, serve the
         source engine alone without shadowing. *)
      let r = run_src () in
      finish ~decision:Shadow.Serve_source ~shadowed:false ~verdict:None
        ~divergent:false ~refused:false ~served_trace:r.Engines.trace
        ~source_accesses:r.Engines.accesses ~target_accesses:0
  | Pair (run_src, run_tgt) -> (
      match phase with
      | Cutover ->
          let r = run_tgt () in
          finish ~decision:Shadow.Serve_target ~shadowed:false ~verdict:None
            ~divergent:false ~refused:false ~served_trace:r.Engines.trace
            ~source_accesses:0 ~target_accesses:r.Engines.accesses
      | Shadow | Canary _ ->
          let decision =
            match phase with
            | Canary f when Request.canary_draw ~seed:canary_seed request < f
              ->
                Shadow.Serve_target
            | Shadow | Canary _ | Cutover -> Shadow.Serve_source
          in
          let sr = run_src () in
          let tr = run_tgt () in
          let verdict, divergent =
            Shadow.judge ~tolerate_reordering sr.Engines.trace tr.Engines.trace
          in
          let served_trace =
            match decision with
            | Shadow.Serve_source -> sr.Engines.trace
            | Shadow.Serve_target -> tr.Engines.trace
          in
          finish ~decision ~shadowed:true ~verdict:(Some verdict) ~divergent
            ~refused:false ~served_trace
            ~source_accesses:sr.Engines.accesses
            ~target_accesses:tr.Engines.accesses)
