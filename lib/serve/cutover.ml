type phase = Shadow | Canary of float | Cutover

let phase_name = function
  | Shadow -> "shadow"
  | Canary f -> Printf.sprintf "canary-%.0f%%" (100. *. f)
  | Cutover -> "cutover"

let equal_phase a b =
  match a, b with
  | Shadow, Shadow | Cutover, Cutover -> true
  | Canary f, Canary g -> Float.equal f g
  | (Shadow | Canary _ | Cutover), _ -> false

let pp_phase ppf p = Fmt.string ppf (phase_name p)

type config = {
  canary_fraction : float;
  window : int;
  min_observations : int;
  max_divergence_rate : float;
  promote_after : int;
  initial : phase;
}

let default_config =
  { canary_fraction = 0.25;
    window = 32;
    min_observations = 8;
    max_divergence_rate = 0.05;
    promote_after = 24;
    initial = Shadow;
  }

type transition = {
  at_request : int;
  at_epoch : int;
  from_ : phase;
  to_ : phase;
  reason : string;
}

let pp_transition ppf t =
  Fmt.pf ppf "request %d (epoch %d): %s -> %s (%s)" t.at_request t.at_epoch
    (phase_name t.from_) (phase_name t.to_) t.reason

type status = Serving | Aborted

type t = {
  config : config;
  (* circular buffer of the last [window] shadow verdicts *)
  ring : bool array;
  mutable ring_len : int;
  mutable ring_pos : int;
  mutable divergent_in_window : int;
  mutable clean_streak : int;
  mutable phase : phase;
  mutable status : status;
  mutable transitions_rev : transition list;
  mutable observations : int;
  mutable gate_open : bool;
}

let create config =
  if config.window <= 0 then invalid_arg "Cutover.create: window must be > 0";
  { config;
    ring = Array.make config.window false;
    ring_len = 0;
    ring_pos = 0;
    divergent_in_window = 0;
    clean_streak = 0;
    phase = config.initial;
    status = Serving;
    transitions_rev = [];
    observations = 0;
    gate_open = true;
  }

let phase t = t.phase
let status t = t.status
let transitions t = List.rev t.transitions_rev
let observations t = t.observations
let set_gate t open_ = t.gate_open <- open_

let next_phase t = function
  | Shadow -> Some (Canary t.config.canary_fraction)
  | Canary _ -> Some Cutover
  | Cutover -> None

let prev_phase = function
  | Cutover -> Some Shadow
      (* unreachable in practice: Cutover yields no observations *)
  | Canary _ -> Some Shadow
  | Shadow -> None

let reset_window t =
  Array.fill t.ring 0 t.config.window false;
  t.ring_len <- 0;
  t.ring_pos <- 0;
  t.divergent_in_window <- 0;
  t.clean_streak <- 0

let move t ~at ~epoch ~to_ ~reason =
  t.transitions_rev <-
    { at_request = at; at_epoch = epoch; from_ = t.phase; to_ = to_; reason }
    :: t.transitions_rev;
  t.phase <- to_;
  reset_window t

let observe t ~request_id ~epoch ~divergent =
  match t.status with
  | Aborted -> ()
  | Serving ->
      t.observations <- t.observations + 1;
      (* slide the window *)
      if t.ring_len = t.config.window then begin
        if t.ring.(t.ring_pos) then
          t.divergent_in_window <- t.divergent_in_window - 1
      end
      else t.ring_len <- t.ring_len + 1;
      t.ring.(t.ring_pos) <- divergent;
      if divergent then t.divergent_in_window <- t.divergent_in_window + 1;
      t.ring_pos <- (t.ring_pos + 1) mod t.config.window;
      t.clean_streak <- (if divergent then 0 else t.clean_streak + 1);
      let rate = float t.divergent_in_window /. float (max 1 t.ring_len) in
      if
        t.ring_len >= t.config.min_observations
        && rate > t.config.max_divergence_rate
      then begin
        let reason =
          Printf.sprintf "rollback: divergence rate %.2f over last %d > %.2f"
            rate t.ring_len t.config.max_divergence_rate
        in
        match prev_phase t.phase with
        | Some to_ -> move t ~at:request_id ~epoch ~to_ ~reason
        | None ->
            t.transitions_rev <-
              { at_request = request_id;
                at_epoch = epoch;
                from_ = t.phase;
                to_ = t.phase;
                reason = reason ^ "; no phase below shadow: conversion aborted";
              }
              :: t.transitions_rev;
            t.status <- Aborted
      end
      else if t.clean_streak >= t.config.promote_after && t.gate_open then
        match next_phase t t.phase with
        | Some to_ ->
            move t ~at:request_id ~epoch ~to_
              ~reason:
                (Printf.sprintf "promoted: %d consecutive clean shadow runs"
                   t.clean_streak)
        | None -> ()

let rollback_to_shadow t ~at ~epoch ~reason =
  match t.status with
  | Aborted -> ()
  | Serving ->
      if not (equal_phase t.phase Shadow) then
        move t ~at ~epoch ~to_:Shadow ~reason
      else begin
        t.transitions_rev <-
          { at_request = at; at_epoch = epoch; from_ = t.phase; to_ = Shadow;
            reason }
          :: t.transitions_rev;
        reset_window t
      end
