open Ccv_common
open Ccv_model

type step =
  | Self of { target : string; qual : Cond.t }
  | Through of {
      target : string;
      source : string;
      link : string * string;
      qual : Cond.t;
    }
  | Assoc_via of { assoc : string; source : string; qual : Cond.t }
  | Via_assoc of { target : string; assoc : string; qual : Cond.t }

type t = step list

let target_of = function
  | Self { target; _ } | Through { target; _ } | Via_assoc { target; _ } ->
      Field.canon target
  | Assoc_via { assoc; _ } -> Field.canon assoc

let names_of seq = List.map target_of seq

let result_of = function
  | [] -> invalid_arg "Apattern.result_of: empty sequence"
  | seq -> target_of (List.nth seq (List.length seq - 1))

let qual_of = function
  | Self { qual; _ } | Through { qual; _ } | Assoc_via { qual; _ }
  | Via_assoc { qual; _ } -> qual

let map_qual f = function
  | Self s -> Self { s with qual = f s.qual }
  | Through s -> Through { s with qual = f s.qual }
  | Assoc_via s -> Assoc_via { s with qual = f s.qual }
  | Via_assoc s -> Via_assoc { s with qual = f s.qual }

let check ?(bound = []) schema seq =
  let problems = ref [] in
  let note fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  let seen = ref (List.map Field.canon bound) in
  let have name = List.exists (Field.name_equal name) !seen in
  List.iter
    (fun step ->
      (match step with
      | Self { target; _ } ->
          if Semantic.find_entity schema target = None then
            note "unknown entity %s" target
      | Through { target; source; link = tf, _sf; qual = _ } -> (
          (match Semantic.find_entity schema target with
          | None -> note "unknown entity %s" target
          | Some e ->
              if not (Field.mem e.fields tf) then
                note "%s has no field %s" target tf);
          if not (have source) then
            note "THROUGH access to %s from unaccessed %s" target source)
      | Assoc_via { assoc; source; _ } -> (
          match Semantic.find_assoc schema assoc with
          | None -> note "unknown association %s" assoc
          | Some a ->
              if
                not
                  (Field.name_equal a.left source
                  || Field.name_equal a.right source)
              then note "%s is not an endpoint of %s" source assoc;
              if not (have source) then
                note "ASSOC access to %s from unaccessed %s" assoc source)
      | Via_assoc { target; assoc; _ } -> (
          match Semantic.find_assoc schema assoc with
          | None -> note "unknown association %s" assoc
          | Some a ->
              if
                not
                  (Field.name_equal a.left target
                  || Field.name_equal a.right target)
              then note "%s is not an endpoint of %s" target assoc;
              if not (have assoc) then
                note "access to %s via unaccessed %s" target assoc));
      seen := target_of step :: !seen)
    seq;
  List.rev !problems

let qualify name row =
  Row.of_list
    (List.map (fun (f, v) -> (Field.canon name ^ "." ^ f, v)) (Row.to_list row))

(* A source binding comes from the context built by earlier steps, or
   — for a query nested inside an enclosing FOR EACH — from the host
   environment where the outer loop bound it. *)
let ctx_value ~env ctx name field =
  let qname = Field.canon name ^ "." ^ Field.canon field in
  match Row.get ctx qname with
  | Some v -> v
  | None -> Option.value (env qname) ~default:Value.Null

(* Evaluate a step's qualification: fields resolve in the candidate
   row, variables in the caller's environment. *)
let qual_holds ~env row qual = Cond.eval ~env row qual

(* Route a [FIELD = const] conjunct (constants may arrive through host
   variables) through an equality index when one exists.  The bucket
   preserves extent order and is filtered with the full qualification,
   so the answer is exactly the scan's. *)
let eq_probe db ~env ename qual =
  List.find_map
    (fun c ->
      match c with
      | Cond.Cmp (Cond.Eq, Cond.Field f, e)
      | Cond.Cmp (Cond.Eq, e, Cond.Field f) ->
          let v =
            match e with
            | Cond.Const v -> Some v
            | Cond.Var x -> env x
            | Cond.Field _ | Cond.Add _ | Cond.Sub _ | Cond.Mul _
            | Cond.Concat _ -> None
          in
          Option.bind v (fun v -> Sdb.rows_eq db ename f v)
      | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
      | Cond.Is_null _ | Cond.Is_not_null _ -> None)
    (Cond.split_conjuncts qual)

let eval db ~env seq =
  let schema = Sdb.schema db in
  let extend ctxs step =
    match step with
    | Self { target; qual } ->
        let pool =
          match eq_probe db ~env target qual with
          | Some rows -> rows
          | None -> Sdb.rows db target
        in
        let rows = List.filter (fun r -> qual_holds ~env r qual) pool in
        List.concat_map
          (fun ctx -> List.map (fun r -> Row.union ctx (qualify target r)) rows)
          ctxs
    | Through { target; source; link = tf, sf; qual } ->
        List.concat_map
          (fun ctx ->
            let wanted = ctx_value ~env ctx source sf in
            let pool =
              match Sdb.rows_eq db target tf wanted with
              | Some rows -> rows
              | None -> Sdb.rows db target
            in
            pool
            |> List.filter (fun r ->
                   (match Row.get r tf with
                   | Some v -> Value.equal v wanted
                   | None -> false)
                   && qual_holds ~env r qual)
            |> List.map (fun r -> Row.union ctx (qualify target r)))
          ctxs
    | Assoc_via { assoc; source; qual } ->
        let a = Semantic.find_assoc_exn schema assoc in
        let source_is_left = Field.name_equal a.left source in
        let src_entity =
          Semantic.find_entity_exn schema (if source_is_left then a.left else a.right)
        in
        List.concat_map
          (fun ctx ->
            let src_key =
              List.map (fun k -> ctx_value ~env ctx source k) src_entity.key
            in
            Sdb.links db assoc
            |> List.filter (fun (l : Sdb.link) ->
                   let side = if source_is_left then l.lkey else l.rkey in
                   List.compare Value.compare side src_key = 0)
            |> List.filter_map (fun l ->
                   let lrow = Sdb.link_row schema a l in
                   if qual_holds ~env lrow qual then
                     Some (Row.union ctx (qualify assoc lrow))
                   else None))
          ctxs
    | Via_assoc { target; assoc; qual } ->
        let a = Semantic.find_assoc_exn schema assoc in
        let target_is_left = Field.name_equal a.left target in
        let tgt_entity =
          Semantic.find_entity_exn schema (if target_is_left then a.left else a.right)
        in
        List.concat_map
          (fun ctx ->
            let key =
              List.map (fun k -> ctx_value ~env ctx assoc k) tgt_entity.key
            in
            match Sdb.find_entity db tgt_entity.ename key with
            | Some r when qual_holds ~env r qual ->
                [ Row.union ctx (qualify target r) ]
            | Some _ | None -> [])
          ctxs
  in
  List.fold_left extend [ Row.empty ] seq

let equal_step a b =
  match a, b with
  | Self x, Self y ->
      Field.name_equal x.target y.target && Cond.equal x.qual y.qual
  | Through x, Through y ->
      Field.name_equal x.target y.target
      && Field.name_equal x.source y.source
      && Field.name_equal (fst x.link) (fst y.link)
      && Field.name_equal (snd x.link) (snd y.link)
      && Cond.equal x.qual y.qual
  | Assoc_via x, Assoc_via y ->
      Field.name_equal x.assoc y.assoc
      && Field.name_equal x.source y.source
      && Cond.equal x.qual y.qual
  | Via_assoc x, Via_assoc y ->
      Field.name_equal x.target y.target
      && Field.name_equal x.assoc y.assoc
      && Cond.equal x.qual y.qual
  | (Self _ | Through _ | Assoc_via _ | Via_assoc _), _ -> false

let equal a b = List.length a = List.length b && List.for_all2 equal_step a b

let pp_qual ppf = function
  | Cond.True -> ()
  | q -> Fmt.pf ppf " WHERE %a" Cond.pp q

let pp_step ppf = function
  | Self { target; qual } -> Fmt.pf ppf "ACCESS %s via %s%a" target target pp_qual qual
  | Through { target; source; link = tf, sf; qual } ->
      Fmt.pf ppf "ACCESS %s via %s through (%s,%s)%a" target source tf sf
        pp_qual qual
  | Assoc_via { assoc; source; qual } ->
      Fmt.pf ppf "ACCESS %s via %s%a" assoc source pp_qual qual
  | Via_assoc { target; assoc; qual } ->
      Fmt.pf ppf "ACCESS %s via %s%a" target assoc pp_qual qual

let pp ppf seq = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_step) seq
let show seq = Fmt.str "%a" pp seq
