open Ccv_common
open Ccv_model

type result = {
  db : Sdb.t;
  trace : Io_trace.t;
  env : (string * Value.t) list;
  steps : int;
  hit_limit : bool;
}

exception Step_limit

type rt = {
  mutable rdb : Sdb.t;
  (* hash-keyed register file: assignment is O(1) amortized instead of
     the old prepend + full-list filter per write *)
  renv : (string, Value.t) Hashtbl.t;
  mutable rsteps : int;
  mutable rinput : string list;
  builder : Io_trace.Builder.t;
  max_steps : int;
}

let lookup rt name =
  Some (Option.value (Hashtbl.find_opt rt.renv name) ~default:Value.Null)

let assign rt name value = Hashtbl.replace rt.renv name value

let set_status rt status =
  assign rt Host.status_var (Value.Str (Status.code status))

let eval_expr rt e = Cond.eval_expr ~env:(lookup rt) Row.empty e
let eval_cond rt c = Cond.eval ~env:(lookup rt) Row.empty c

let render rt es =
  String.concat " " (List.map (fun e -> Value.to_display (eval_expr rt e)) es)

let tick rt =
  rt.rsteps <- rt.rsteps + 1;
  if rt.rsteps > rt.max_steps then raise Step_limit

let bind_context rt ctx =
  List.iter (fun (n, v) -> assign rt n v) (Row.to_list ctx)

(* Key of the instance a context holds for a given entity. *)
let ctx_key schema ctx name =
  let e = Semantic.find_entity_exn schema name in
  List.map
    (fun k ->
      Option.value (Row.get ctx (e.ename ^ "." ^ k)) ~default:Value.Null)
    e.key

(* Build any missing equality indexes the query's access paths can
   exploit — eq-qualified SELF steps and THROUGH link fields.  The
   rebuilt db is kept on the runtime, so the cost is paid once. *)
let ensure_query_indexes rt query =
  let index_step db step =
    match step with
    | Apattern.Self { target; qual } ->
        List.fold_left
          (fun db c ->
            match c with
            | Cond.Cmp (Cond.Eq, Cond.Field f, _)
            | Cond.Cmp (Cond.Eq, _, Cond.Field f) ->
                Sdb.ensure_index db target f
            | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
            | Cond.Is_null _ | Cond.Is_not_null _ -> db)
          db
          (Cond.split_conjuncts qual)
    | Apattern.Through { target; link = tf, _; _ } ->
        Sdb.ensure_index db target tf
    | Apattern.Assoc_via _ | Apattern.Via_assoc _ -> db
  in
  rt.rdb <- List.fold_left index_step rt.rdb query

let rec exec_stmt rt stmt =
  let schema = Sdb.schema rt.rdb in
  match stmt with
  | Aprog.For_each { query; body } ->
      tick rt;
      ensure_query_indexes rt query;
      let ctxs = Apattern.eval rt.rdb ~env:(lookup rt) query in
      List.iter
        (fun ctx ->
          bind_context rt ctx;
          exec_body rt body)
        ctxs;
      (* A completed sweep leaves a clean status register, as the
         concrete loop idioms do after their terminal FIND. *)
      set_status rt Status.Ok
  | Aprog.First { query; present; absent } -> (
      tick rt;
      ensure_query_indexes rt query;
      match Apattern.eval rt.rdb ~env:(lookup rt) query with
      | ctx :: _ ->
          bind_context rt ctx;
          set_status rt Status.Ok;
          exec_body rt present
      | [] ->
          set_status rt Status.Not_found;
          exec_body rt absent)
  | Aprog.Insert { entity; values; connects } -> (
      tick rt;
      let row =
        Row.of_list (List.map (fun (f, e) -> (f, eval_expr rt e)) values)
      in
      let e = Semantic.find_entity_exn schema entity in
      let right = Sdb.key_of e row in
      (* Insert-and-connect is atomic, mirroring a CODASYL STORE into
         AUTOMATIC sets: when any connection fails, nothing happens. *)
      match Sdb.insert_entity rt.rdb entity row with
      | Error s -> set_status rt s
      | Ok db ->
          let rec go db = function
            | [] ->
                rt.rdb <- db;
                set_status rt Status.Ok
            | (assoc, key_exprs) :: rest -> (
                let left = List.map (eval_expr rt) key_exprs in
                match Sdb.link db assoc ~left ~right with
                | Ok db -> go db rest
                | Error s -> set_status rt s)
          in
          go db connects)
  | Aprog.Link { assoc; left_key; right_key; attrs } -> (
      tick rt;
      let left = List.map (eval_expr rt) left_key in
      let right = List.map (eval_expr rt) right_key in
      let attrs =
        Row.of_list (List.map (fun (f, e) -> (f, eval_expr rt e)) attrs)
      in
      match Sdb.link ~attrs rt.rdb assoc ~left ~right with
      | Ok db ->
          rt.rdb <- db;
          set_status rt Status.Ok
      | Error s -> set_status rt s)
  | Aprog.Unlink { assoc; left_key; right_key } -> (
      tick rt;
      let right = List.map (eval_expr rt) right_key in
      let left =
        match left_key with
        | [] ->
            (* DISCONNECT semantics: find the partner. *)
            let found =
              List.find_opt
                (fun (l : Sdb.link) ->
                  List.compare Value.compare l.rkey right = 0)
                (Sdb.links_silent rt.rdb assoc)
            in
            (match found with Some l -> l.lkey | None -> [ Value.Null ])
        | _ -> List.map (eval_expr rt) left_key
      in
      match Sdb.unlink rt.rdb assoc ~left ~right with
      | Ok db ->
          rt.rdb <- db;
          set_status rt Status.Ok
      | Error s -> set_status rt s)
  | Aprog.Update { query; assigns } ->
      tick rt;
      ensure_query_indexes rt query;
      let target = Apattern.result_of query in
      let ctxs = Apattern.eval rt.rdb ~env:(lookup rt) query in
      let status = ref Status.Ok in
      List.iter
        (fun ctx ->
          bind_context rt ctx;
          let key = ctx_key schema ctx target in
          let values = List.map (fun (f, e) -> (f, eval_expr rt e)) assigns in
          match Sdb.update_entity rt.rdb target key values with
          | Ok db -> rt.rdb <- db
          | Error s -> status := s)
        ctxs;
      set_status rt !status
  | Aprog.Delete { query; cascade } ->
      tick rt;
      ensure_query_indexes rt query;
      let target = Apattern.result_of query in
      let ctxs = Apattern.eval rt.rdb ~env:(lookup rt) query in
      let status = ref Status.Ok in
      (* Entity targets are deleted; association targets are unlinked. *)
      (match Semantic.find_assoc schema target with
      | Some a ->
          let le = Semantic.find_entity_exn schema a.left in
          let re = Semantic.find_entity_exn schema a.right in
          List.iter
            (fun ctx ->
              let pick (e : Semantic.entity) =
                List.map
                  (fun k ->
                    Option.value (Row.get ctx (target ^ "." ^ k))
                      ~default:Value.Null)
                  e.key
              in
              match
                Sdb.unlink rt.rdb target ~left:(pick le) ~right:(pick re)
              with
              | Ok db -> rt.rdb <- db
              | Error Status.Not_found -> ()
              | Error s -> status := s)
            ctxs
      | None ->
          List.iter
            (fun ctx ->
              let key = ctx_key schema ctx target in
              match Sdb.delete_entity rt.rdb target key ~cascade with
              | Ok db -> rt.rdb <- db
              | Error Status.Not_found -> ()
              | Error s -> status := s)
            ctxs);
      set_status rt !status
  | Aprog.Display es ->
      tick rt;
      Io_trace.Builder.emit rt.builder (Io_trace.Terminal_out (render rt es))
  | Aprog.Accept x ->
      tick rt;
      let line, rest =
        match rt.rinput with [] -> ("", []) | l :: rest -> (l, rest)
      in
      rt.rinput <- rest;
      Io_trace.Builder.emit rt.builder (Io_trace.Terminal_in line);
      assign rt x (Value.Str line)
  | Aprog.Write_file (file, es) ->
      tick rt;
      Io_trace.Builder.emit rt.builder (Io_trace.File_write (file, render rt es))
  | Aprog.Move (e, x) ->
      tick rt;
      assign rt x (eval_expr rt e)
  | Aprog.If (c, a, b) ->
      tick rt;
      if eval_cond rt c then exec_body rt a else exec_body rt b
  | Aprog.While (c, body) ->
      tick rt;
      let rec loop () =
        if eval_cond rt c then begin
          exec_body rt body;
          tick rt;
          loop ()
        end
      in
      loop ()

and exec_body rt body = List.iter (exec_stmt rt) body

let run ?(input = []) ?(max_steps = 200_000) db (p : Aprog.t) =
  let renv = Hashtbl.create 64 in
  Hashtbl.replace renv Host.status_var (Value.Str "0000");
  let rt =
    { rdb = db;
      renv;
      rsteps = 0;
      rinput = input;
      builder = Io_trace.Builder.create ();
      max_steps;
    }
  in
  let hit_limit =
    try
      exec_body rt p.body;
      false
    with Step_limit -> true
  in
  { db = rt.rdb;
    trace = Io_trace.Builder.contents rt.builder;
    env = Hashtbl.fold (fun n v acc -> (n, v) :: acc) rt.renv [];
    steps = rt.rsteps;
    hit_limit;
  }
