(** Functorized traversal kit over the abstract IR.

    One open-recursion engine for every pass over [Aprog.t] /
    [Apattern.t] terms (the conversion-rule rewriter, the optimizer,
    the advisor, demand collection, and the static analyzer all build
    on it).  A pass is a record of hooks; each hook receives the whole
    record ([self]) so overrides compose with the structural defaults.
    Both engines are parameterized over an environment extended with
    the names each FOR EACH / FIRST query binds, mirroring
    [Aprog.check]'s scoping. *)

open Ccv_common

module type ENV = sig
  type t

  val bind : t -> string list -> t
  (** Extend the environment with the names a query binds for the
      statements scoped under it. *)
end

module Unit_env : ENV with type t = unit

module Names : ENV with type t = string list
(** Threads the in-scope bound names, innermost first. *)

val map_expr : (string -> Cond.expr) -> Cond.expr -> Cond.expr
(** Structural map with a hook applied at every [Var] leaf. *)

val map_cond : (string -> Cond.expr) -> Cond.t -> Cond.t

(** Bottom-up accumulation over a program. *)
module Fold (E : ENV) : sig
  type 'a t = {
    expr : 'a t -> E.t -> 'a -> Cond.expr -> 'a;
    cond : 'a t -> E.t -> 'a -> Cond.t -> 'a;
    step : 'a t -> E.t -> 'a -> Apattern.step -> 'a;
    query : 'a t -> E.t -> 'a -> Apattern.t -> 'a;
    varname : 'a t -> E.t -> 'a -> string -> 'a;
    stmt : 'a t -> E.t -> 'a -> Aprog.astmt -> 'a option;
        (** [Some acc] claims the statement and skips the structural
            descent into its children; [None] descends. *)
  }

  val default : 'a t
  (** Pure structural recursion: [query] folds its steps, [step] folds
      its qualification, [cond]/[expr] fold sub-terms, [varname] and
      leaf expressions contribute nothing, [stmt] always descends. *)

  val children : 'a t -> E.t -> 'a -> Aprog.astmt -> 'a
  (** Structural descent into one statement's children — call from a
      [stmt] hook to both contribute and keep descending. *)

  val stmt : 'a t -> E.t -> 'a -> Aprog.astmt -> 'a
  val body : 'a t -> E.t -> 'a -> Aprog.astmt list -> 'a
  val query : 'a t -> E.t -> 'a -> Apattern.t -> 'a
  val program : 'a t -> E.t -> 'a -> Aprog.t -> 'a
end

(** Program rewriting.  Subsumes the conversion-rule rewriter
    (top-down [stmt] with pipeline re-entry) and the optimizer
    (bottom-up [stmt_out] / [body_out]). *)
module Map (E : ENV) : sig
  type t = {
    expr : t -> E.t -> Cond.expr -> Cond.expr;
    cond : t -> E.t -> Cond.t -> Cond.t;
    step : t -> E.t -> Apattern.step -> Apattern.step;
    query : t -> E.t -> Apattern.t -> Apattern.t;
    varname : t -> E.t -> string -> string;
        (** applied to MOVE/ACCEPT targets *)
    stmt : t -> E.t -> Aprog.astmt -> Aprog.astmt list option;
        (** top-down custom rewrite; [None] falls through to the
            structural rewrite, [Some stmts] re-enters the pipeline
            (the hook must not re-match its own output) *)
    stmt_out : t -> E.t -> Aprog.astmt -> Aprog.astmt list;
        (** bottom-up, after the statement's children were rewritten *)
    body_out : t -> E.t -> Aprog.astmt list -> Aprog.astmt list;
        (** post-pass over each fully rewritten statement list *)
  }

  val default : t
  (** The identity rewrite. *)

  val structural : t -> E.t -> Aprog.astmt -> Aprog.astmt
  val stmt_full : t -> E.t -> Aprog.astmt -> Aprog.astmt list
  val body : t -> E.t -> Aprog.astmt list -> Aprog.astmt list
  val program : t -> E.t -> Aprog.t -> Aprog.t
end

(** {1 Unit-environment conveniences} *)

val fold_queries : ('a -> Apattern.t -> 'a) -> 'a -> Aprog.t -> 'a
(** Fold over every access-path query in the program, in statement
    order. *)

val iter_queries : (Apattern.t -> unit) -> Aprog.t -> unit

val fold_stmts : ('a -> Aprog.astmt -> 'a) -> 'a -> Aprog.t -> 'a
(** Pre-order fold over every statement, including nested ones. *)

val iter_stmts : (Aprog.astmt -> unit) -> Aprog.t -> unit
