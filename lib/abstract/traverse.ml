(* Functorized traversal kit over the abstract IR (ROADMAP item 4).

   Every pass over [Aprog.t] used to hand-roll its own recursion —
   rules.ml's rewriter, optimizer.ml's opt_body, advisor.ml's walk,
   migrate.ml's demand collector.  This module factors the recursion
   once, in the open-recursion style of the visitors idiom: a pass is
   a record of hooks, each hook receives the full record ([self]) so
   overrides compose with the structural defaults, and the whole thing
   is parameterized over an environment that is extended with the
   names each FOR EACH / FIRST query binds (exactly as [Aprog.check]
   threads bound names).

   Two engines are provided:

   - [Fold (E)]: bottom-up accumulation.  The [stmt] hook may return
     [Some acc] to claim a statement and skip the structural descent
     into its children (used by passes that must ignore subtrees a
     rewrite would drop).

   - [Map (E)]: program rewriting.  The [stmt] hook runs top-down and
     may replace a statement with a list that re-enters the pipeline
     (the hook must not re-match its own output) — this subsumes the
     conversion-rule rewriter.  [stmt_out] runs bottom-up after the
     children have been rewritten and [body_out] post-processes each
     statement list — these subsume the optimizer's shape. *)

open Ccv_common

module type ENV = sig
  type t

  val bind : t -> string list -> t
  (** Extend the environment with the names a query binds for the
      statements scoped under it. *)
end

module Unit_env : ENV with type t = unit = struct
  type t = unit

  let bind () _ = ()
end

module Names : ENV with type t = string list = struct
  type t = string list

  let bind env names = names @ env
end

(* ------------------------------------------------------------------ *)
(* Plain expression/condition maps with a variable hook (previously
   private to rules.ml; every client of Rules.map_expr routes here). *)

let rec map_expr f = function
  | Cond.Const v -> Cond.Const v
  | Cond.Field x -> Cond.Field x
  | Cond.Var x -> f x
  | Cond.Add (a, b) -> Cond.Add (map_expr f a, map_expr f b)
  | Cond.Sub (a, b) -> Cond.Sub (map_expr f a, map_expr f b)
  | Cond.Mul (a, b) -> Cond.Mul (map_expr f a, map_expr f b)
  | Cond.Concat (a, b) -> Cond.Concat (map_expr f a, map_expr f b)

let rec map_cond f = function
  | Cond.True -> Cond.True
  | Cond.Cmp (op, a, b) -> Cond.Cmp (op, map_expr f a, map_expr f b)
  | Cond.And (a, b) -> Cond.And (map_cond f a, map_cond f b)
  | Cond.Or (a, b) -> Cond.Or (map_cond f a, map_cond f b)
  | Cond.Not a -> Cond.Not (map_cond f a)
  | Cond.Is_null e -> Cond.Is_null (map_expr f e)
  | Cond.Is_not_null e -> Cond.Is_not_null (map_expr f e)

(* ------------------------------------------------------------------ *)
(* Fold                                                                *)

module Fold (E : ENV) = struct
  type 'a t = {
    expr : 'a t -> E.t -> 'a -> Cond.expr -> 'a;
    cond : 'a t -> E.t -> 'a -> Cond.t -> 'a;
    step : 'a t -> E.t -> 'a -> Apattern.step -> 'a;
    query : 'a t -> E.t -> 'a -> Apattern.t -> 'a;
    varname : 'a t -> E.t -> 'a -> string -> 'a;
    stmt : 'a t -> E.t -> 'a -> Aprog.astmt -> 'a option;
        (* [Some acc] claims the statement: the structural descent into
           its children is skipped.  [None] descends. *)
  }

  let default_expr self env acc e =
    match e with
    | Cond.Const _ | Cond.Field _ | Cond.Var _ -> acc
    | Cond.Add (a, b) | Cond.Sub (a, b) | Cond.Mul (a, b) | Cond.Concat (a, b)
      ->
        self.expr self env (self.expr self env acc a) b

  let default_cond self env acc c =
    match c with
    | Cond.True -> acc
    | Cond.Cmp (_, a, b) -> self.expr self env (self.expr self env acc a) b
    | Cond.And (a, b) | Cond.Or (a, b) ->
        self.cond self env (self.cond self env acc a) b
    | Cond.Not a -> self.cond self env acc a
    | Cond.Is_null e | Cond.Is_not_null e -> self.expr self env acc e

  let default_step self env acc s = self.cond self env acc (Apattern.qual_of s)

  let default_query self env acc q =
    List.fold_left (fun acc s -> self.step self env acc s) acc q

  let default =
    { expr = default_expr;
      cond = default_cond;
      step = default_step;
      query = default_query;
      varname = (fun _ _ acc _ -> acc);
      stmt = (fun _ _ _ _ -> None);
    }

  let rec stmt self env acc s =
    match self.stmt self env acc s with
    | Some acc -> acc
    | None -> children self env acc s

  and body self env acc stmts = List.fold_left (stmt self env) acc stmts

  (* Structural descent; exposed so a [stmt] hook can both contribute
     to the accumulator and keep descending. *)
  and children self env acc s =
    let exprs acc es = List.fold_left (self.expr self env) acc es in
    let fields acc fes = List.fold_left (fun acc (_, e) -> self.expr self env acc e) acc fes in
    match s with
    | Aprog.For_each { query; body = b } ->
        let acc = self.query self env acc query in
        body self (E.bind env (Apattern.names_of query)) acc b
    | Aprog.First { query; present; absent } ->
        let acc = self.query self env acc query in
        let acc = body self (E.bind env (Apattern.names_of query)) acc present in
        body self env acc absent
    | Aprog.Insert { values; connects; _ } ->
        List.fold_left (fun acc (_, ks) -> exprs acc ks) (fields acc values) connects
    | Aprog.Link { left_key; right_key; attrs; _ } ->
        fields (exprs (exprs acc left_key) right_key) attrs
    | Aprog.Unlink { left_key; right_key; _ } ->
        exprs (exprs acc left_key) right_key
    | Aprog.Update { query; assigns } ->
        fields (self.query self env acc query) assigns
    | Aprog.Delete { query; _ } -> self.query self env acc query
    | Aprog.Display es -> exprs acc es
    | Aprog.Accept x -> self.varname self env acc x
    | Aprog.Write_file (_, es) -> exprs acc es
    | Aprog.Move (e, x) ->
        self.varname self env (self.expr self env acc e) x
    | Aprog.If (c, a, b) ->
        body self env (body self env (self.cond self env acc c) a) b
    | Aprog.While (c, b) -> body self env (self.cond self env acc c) b

  let query self env acc q = self.query self env acc q
  let program self env acc (p : Aprog.t) = body self env acc p.Aprog.body
end

(* ------------------------------------------------------------------ *)
(* Map                                                                 *)

module Map (E : ENV) = struct
  type t = {
    expr : t -> E.t -> Cond.expr -> Cond.expr;
    cond : t -> E.t -> Cond.t -> Cond.t;
    step : t -> E.t -> Apattern.step -> Apattern.step;
    query : t -> E.t -> Apattern.t -> Apattern.t;
    varname : t -> E.t -> string -> string;
    stmt : t -> E.t -> Aprog.astmt -> Aprog.astmt list option;
        (* top-down; [Some stmts] re-enters the pipeline (must not
           re-match its own output), [None] falls through to the
           structural rewrite *)
    stmt_out : t -> E.t -> Aprog.astmt -> Aprog.astmt list;
        (* bottom-up, after children were rewritten *)
    body_out : t -> E.t -> Aprog.astmt list -> Aprog.astmt list;
        (* post-pass over each rewritten statement list *)
  }

  let default_expr self env e =
    match e with
    | Cond.Const _ | Cond.Field _ | Cond.Var _ -> e
    | Cond.Add (a, b) -> Cond.Add (self.expr self env a, self.expr self env b)
    | Cond.Sub (a, b) -> Cond.Sub (self.expr self env a, self.expr self env b)
    | Cond.Mul (a, b) -> Cond.Mul (self.expr self env a, self.expr self env b)
    | Cond.Concat (a, b) ->
        Cond.Concat (self.expr self env a, self.expr self env b)

  let default_cond self env c =
    match c with
    | Cond.True -> Cond.True
    | Cond.Cmp (op, a, b) ->
        Cond.Cmp (op, self.expr self env a, self.expr self env b)
    | Cond.And (a, b) -> Cond.And (self.cond self env a, self.cond self env b)
    | Cond.Or (a, b) -> Cond.Or (self.cond self env a, self.cond self env b)
    | Cond.Not a -> Cond.Not (self.cond self env a)
    | Cond.Is_null e -> Cond.Is_null (self.expr self env e)
    | Cond.Is_not_null e -> Cond.Is_not_null (self.expr self env e)

  let default =
    { expr = default_expr;
      cond = default_cond;
      step = (fun self env s -> Apattern.map_qual (self.cond self env) s);
      query = (fun self env q -> List.map (self.step self env) q);
      varname = (fun _ _ x -> x);
      stmt = (fun _ _ _ -> None);
      stmt_out = (fun _ _ s -> [ s ]);
      body_out = (fun _ _ b -> b);
    }

  let rec body self env stmts =
    self.body_out self env (List.concat_map (stmt_full self env) stmts)

  and stmt_full self env s =
    match self.stmt self env s with
    | Some stmts -> List.concat_map (stmt_full self env) stmts
    | None -> self.stmt_out self env (structural self env s)

  (* The environment is extended with the names the *source* query
     binds (rewrites may rename them; scoping follows the input). *)
  and structural self env = function
    | Aprog.For_each { query; body = b } ->
        let inner = E.bind env (Apattern.names_of query) in
        Aprog.For_each { query = self.query self env query; body = body self inner b }
    | Aprog.First { query; present; absent } ->
        let inner = E.bind env (Apattern.names_of query) in
        Aprog.First
          { query = self.query self env query;
            present = body self inner present;
            absent = body self env absent;
          }
    | Aprog.Insert { entity; values; connects } ->
        Aprog.Insert
          { entity;
            values = List.map (fun (f, e) -> (f, self.expr self env e)) values;
            connects =
              List.map
                (fun (a, ks) -> (a, List.map (self.expr self env) ks))
                connects;
          }
    | Aprog.Link { assoc; left_key; right_key; attrs } ->
        Aprog.Link
          { assoc;
            left_key = List.map (self.expr self env) left_key;
            right_key = List.map (self.expr self env) right_key;
            attrs = List.map (fun (f, e) -> (f, self.expr self env e)) attrs;
          }
    | Aprog.Unlink { assoc; left_key; right_key } ->
        Aprog.Unlink
          { assoc;
            left_key = List.map (self.expr self env) left_key;
            right_key = List.map (self.expr self env) right_key;
          }
    | Aprog.Update { query; assigns } ->
        Aprog.Update
          { query = self.query self env query;
            assigns = List.map (fun (f, e) -> (f, self.expr self env e)) assigns;
          }
    | Aprog.Delete { query; cascade } ->
        Aprog.Delete { query = self.query self env query; cascade }
    | Aprog.Display es -> Aprog.Display (List.map (self.expr self env) es)
    | Aprog.Accept x -> Aprog.Accept (self.varname self env x)
    | Aprog.Write_file (f, es) ->
        Aprog.Write_file (f, List.map (self.expr self env) es)
    | Aprog.Move (e, x) ->
        Aprog.Move (self.expr self env e, self.varname self env x)
    | Aprog.If (c, a, b) ->
        Aprog.If (self.cond self env c, body self env a, body self env b)
    | Aprog.While (c, b) -> Aprog.While (self.cond self env c, body self env b)

  let program self env (p : Aprog.t) =
    { p with Aprog.body = body self env p.Aprog.body }
end

(* ------------------------------------------------------------------ *)
(* Unit-environment conveniences                                       *)

module F = Fold (Unit_env)

let fold_queries f acc p =
  F.program { F.default with F.query = (fun _ () acc q -> f acc q) } () acc p

let iter_queries f p = fold_queries (fun () q -> f q) () p

let fold_stmts f acc p =
  (* pre-order: visit the statement, then descend *)
  let folder =
    { F.default with
      F.stmt = (fun self () acc s -> Some (F.children self () (f acc s) s));
    }
  in
  F.program folder () acc p

let iter_stmts f p = fold_stmts (fun () s -> f s) () p
