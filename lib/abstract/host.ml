open Ccv_common

type 'dml stmt =
  | Dml of 'dml
  | Move of Cond.expr * string
  | Display of Cond.expr list
  | Accept of string
  | Write_file of string * Cond.expr list
  | If of Cond.t * 'dml stmt list * 'dml stmt list
  | While of Cond.t * 'dml stmt list

type 'dml program = { name : string; body : 'dml stmt list }

let status_var = "DB-STATUS"
let status_ok = Cond.Cmp (Cond.Eq, Cond.Var status_var, Cond.Const (Value.Str "0000"))

let status_is s =
  Cond.Cmp (Cond.Eq, Cond.Var status_var, Cond.Const (Value.Str (Status.code s)))

let status_not s =
  Cond.Cmp (Cond.Ne, Cond.Var status_var, Cond.Const (Value.Str (Status.code s)))

let v name = Cond.Var name
let str s = Cond.Const (Value.Str s)
let int i = Cond.Const (Value.Int i)

let rec map_stmt f = function
  | Dml d -> Dml (f d)
  | Move (e, x) -> Move (e, x)
  | Display es -> Display es
  | Accept x -> Accept x
  | Write_file (file, es) -> Write_file (file, es)
  | If (c, a, b) -> If (c, List.map (map_stmt f) a, List.map (map_stmt f) b)
  | While (c, body) -> While (c, List.map (map_stmt f) body)

let map_dml f p = { p with body = List.map (map_stmt f) p.body }

let rec concat_map_stmt f = function
  | Dml d -> f d
  | Move (e, x) -> [ Move (e, x) ]
  | Display es -> [ Display es ]
  | Accept x -> [ Accept x ]
  | Write_file (file, es) -> [ Write_file (file, es) ]
  | If (c, a, b) ->
      [ If (c, List.concat_map (concat_map_stmt f) a,
            List.concat_map (concat_map_stmt f) b) ]
  | While (c, body) -> [ While (c, List.concat_map (concat_map_stmt f) body) ]

let concat_map_dml f p =
  { p with body = List.concat_map (concat_map_stmt f) p.body }

let rec dml_of_stmt = function
  | Dml d -> [ d ]
  | Move _ | Display _ | Accept _ | Write_file _ -> []
  | If (_, a, b) -> List.concat_map dml_of_stmt a @ List.concat_map dml_of_stmt b
  | While (_, body) -> List.concat_map dml_of_stmt body

let dml_list p = List.concat_map dml_of_stmt p.body

let rec vars_of_stmt ~vars_of_dml = function
  | Dml d -> vars_of_dml d
  | Move (e, x) -> x :: Cond.vars (Cond.Cmp (Cond.Eq, e, e))
  | Display es | Write_file (_, es) ->
      List.concat_map (fun e -> Cond.vars (Cond.Cmp (Cond.Eq, e, e))) es
  | Accept x -> [ x ]
  | If (c, a, b) ->
      Cond.vars c
      @ List.concat_map (vars_of_stmt ~vars_of_dml) a
      @ List.concat_map (vars_of_stmt ~vars_of_dml) b
  | While (c, body) ->
      Cond.vars c @ List.concat_map (vars_of_stmt ~vars_of_dml) body

let variables p ~vars_of_dml =
  let all = List.concat_map (vars_of_stmt ~vars_of_dml) p.body in
  let rec dedup seen = function
    | [] -> List.rev seen
    | x :: rest -> if List.mem x seen then dedup seen rest else dedup (x :: seen) rest
  in
  dedup [] all

let rec size_stmt = function
  | Dml _ | Move _ | Display _ | Accept _ | Write_file _ -> 1
  | If (_, a, b) ->
      1 + List.fold_left (fun n s -> n + size_stmt s) 0 (a @ b)
  | While (_, body) -> 1 + List.fold_left (fun n s -> n + size_stmt s) 0 body

let size p = List.fold_left (fun n s -> n + size_stmt s) 0 p.body

let pp ~dml ppf p =
  let rec pp_stmt indent ppf s =
    let pad = String.make indent ' ' in
    match s with
    | Dml d -> Fmt.pf ppf "%s%a." pad dml d
    | Move (e, x) -> Fmt.pf ppf "%sMOVE %a TO %s." pad Cond.pp_expr e x
    | Display es ->
        Fmt.pf ppf "%sDISPLAY %a." pad
          Fmt.(list ~sep:(any " ") Cond.pp_expr) es
    | Accept x -> Fmt.pf ppf "%sACCEPT %s." pad x
    | Write_file (file, es) ->
        Fmt.pf ppf "%sWRITE %a TO FILE %s." pad
          Fmt.(list ~sep:(any " ") Cond.pp_expr) es file
    | If (c, a, []) ->
        Fmt.pf ppf "%sIF %a THEN@.%a%sEND-IF." pad Cond.pp c
          (pp_body (indent + 2)) a pad
    | If (c, a, b) ->
        Fmt.pf ppf "%sIF %a THEN@.%a%sELSE@.%a%sEND-IF." pad Cond.pp c
          (pp_body (indent + 2)) a pad (pp_body (indent + 2)) b pad
    | While (c, body) ->
        Fmt.pf ppf "%sPERFORM WHILE %a@.%a%sEND-PERFORM." pad Cond.pp c
          (pp_body (indent + 2)) body pad
  and pp_body indent ppf body =
    List.iter (fun s -> Fmt.pf ppf "%a@." (pp_stmt indent) s) body
  in
  Fmt.pf ppf "PROGRAM %s.@.%a" p.name (pp_body 2) p.body

module type ENGINE = sig
  type db
  type state
  type dml

  val initial_state : db -> state

  val exec :
    db -> state -> env:Cond.env -> dml ->
    db * state * (string * Value.t) list * Status.t
end

module Run (E : ENGINE) = struct
  type result = {
    db : E.db;
    trace : Io_trace.t;
    env : (string * Value.t) list;
    statuses : Status.t list;
    steps : int;
    hit_limit : bool;
  }

  exception Step_limit

  type rt = {
    mutable rdb : E.db;
    mutable rstate : E.state;
    (* hash-keyed register file: O(1) amortized assignment instead of
       prepend + full-list filter per write *)
    renv : (string, Value.t) Hashtbl.t;
    mutable rstatuses : Status.t list;
    mutable rsteps : int;
    mutable rinput : string list;
    builder : Io_trace.Builder.t;
    max_steps : int;
  }

  let lookup rt name =
    Some (Option.value (Hashtbl.find_opt rt.renv name) ~default:Value.Null)

  let assign rt name value = Hashtbl.replace rt.renv name value

  let eval_expr rt e = Cond.eval_expr ~env:(lookup rt) Row.empty e
  let eval_cond rt c = Cond.eval ~env:(lookup rt) Row.empty c

  let render rt es =
    String.concat " " (List.map (fun e -> Value.to_display (eval_expr rt e)) es)

  let tick rt =
    rt.rsteps <- rt.rsteps + 1;
    if rt.rsteps > rt.max_steps then raise Step_limit

  let rec exec_stmt rt = function
    | Dml d ->
        tick rt;
        let db, state, updates, status =
          E.exec rt.rdb rt.rstate ~env:(lookup rt) d
        in
        rt.rdb <- db;
        rt.rstate <- state;
        List.iter (fun (n, v) -> assign rt n v) updates;
        assign rt status_var (Value.Str (Status.code status));
        rt.rstatuses <- status :: rt.rstatuses
    | Move (e, x) ->
        tick rt;
        assign rt x (eval_expr rt e)
    | Display es ->
        tick rt;
        Io_trace.Builder.emit rt.builder (Io_trace.Terminal_out (render rt es))
    | Accept x ->
        tick rt;
        let line, rest =
          match rt.rinput with [] -> ("", []) | l :: rest -> (l, rest)
        in
        rt.rinput <- rest;
        Io_trace.Builder.emit rt.builder (Io_trace.Terminal_in line);
        assign rt x (Value.Str line)
    | Write_file (file, es) ->
        tick rt;
        Io_trace.Builder.emit rt.builder (Io_trace.File_write (file, render rt es))
    | If (c, a, b) ->
        tick rt;
        if eval_cond rt c then exec_body rt a else exec_body rt b
    | While (c, body) ->
        tick rt;
        let rec loop () =
          if eval_cond rt c then begin
            exec_body rt body;
            tick rt;
            loop ()
          end
        in
        loop ()

  and exec_body rt body = List.iter (exec_stmt rt) body

  let run ?(input = []) ?(max_steps = 200_000) db program =
    let renv = Hashtbl.create 64 in
    Hashtbl.replace renv status_var (Value.Str "0000");
    let rt =
      { rdb = db;
        rstate = E.initial_state db;
        renv;
        rstatuses = [];
        rsteps = 0;
        rinput = input;
        builder = Io_trace.Builder.create ();
        max_steps;
      }
    in
    let hit_limit =
      try
        exec_body rt program.body;
        false
      with Step_limit -> true
    in
    { db = rt.rdb;
      trace = Io_trace.Builder.contents rt.builder;
      env = Hashtbl.fold (fun n v acc -> (n, v) :: acc) rt.renv [];
      statuses = List.rev rt.rstatuses;
      steps = rt.rsteps;
      hit_limit;
    }
end
