(** The deterministic backfill schedule.

    [watermark_target ~total ~batch ~lag ~rows e] is the slot index a
    shard's backfill must have drained before executing logical row
    [e] of [rows] total rows: [0] for the first [lag] rows (serving
    starts instantly), then [batch] more slots per row, and the full
    [total] at the shard's last row — a run always ends fully
    migrated.  Monotone in [e]; a pure function of logical time, so
    workers drain and the coordinator gates convergence from the same
    arithmetic without exchanging watermarks. *)

val watermark_target : total:int -> batch:int -> lag:int -> rows:int -> int -> int

(** [converged ... e] — the schedule covers the whole keyspace at row
    [e]. *)
val converged : total:int -> batch:int -> lag:int -> rows:int -> int -> bool
