(** Per-shard live-migration state: the paper's data translation run
    {e concurrently} with serving instead of ahead of it.

    A shard starts with its source replica and an {e empty} target
    replica ({!Ccv_convert.Supervisor.prepare_live}), plus a
    translated/pending flag per source record ({e slot}).  Records
    reach the target three ways, all translated from the immutable
    migration-start snapshot:

    - {b fault-in}: {!prepare_request} translates everything a request
      may touch before the request is dual-run, so no request ever
      observes a partially-translated extent — key-equality lookups
      drain one record, scans drain the whole entity;
    - {b backfill}: {!backfill_to} drains the slots a deterministic
      schedule ({!Backfill.watermark_target}) assigns to each logical
      row, in batches, between serving rows;
    - {b dual-apply}: mutating requests run on both replicas (the
      serving layer's shadow pair), which is sound because their touch
      set was faulted in first — a write always lands on
      already-translated records, so backfill never races it.

    Each drained record is translated as a {e closure}: the record,
    its link partners, and their partners ride in one
    {!Ccv_transform.Data_translate.translate_slice} call, so ops that
    compute across links (Interpose groupings, Collapse field pulls)
    see full context; the record and its hop-1 partners merge into the
    replica (insert-if-absent, via {!Ccv_transform.Mapping.loader_add}
    in lenient mode), hop 2 is context only.  Restructurings whose
    data dependencies span more than two associations are out of
    scope.  The final contents equal a bulk translation followed by
    the same writes, because per-record snapshot translation commutes
    with writes that always follow their records' fault-in.

    All progress is keyed to logical time (epoch rows / ticks), never
    physical scheduling, so migration preserves the serving layer's
    domain-count determinism. *)

open Ccv_model
open Ccv_abstract
open Ccv_convert

type config = {
  batch : int;  (** backfill slots drained per logical row *)
  lag : int;  (** logical rows before backfill starts *)
  fail_at_slot : (int * int) option;
      (** fault injection: backfill on shard [fst] raises when its scan
          crosses slot [snd]; [None] in production *)
}

val default_config : config

type t

type summary = {
  total_slots : int;  (** source records subject to migration *)
  faulted : int;  (** slots drained on demand by requests *)
  backfilled : int;  (** slots drained by the backfill driver *)
  mig_warnings : string list;
      (** records/links the merge could not place (e.g. deleted by a
          concurrent dual-applied cascade), plus admission refusals
          recorded by {!note_refusal} *)
  mig_failed : string option;  (** why migration stopped, if it did *)
}

(** [start ~shard_id req sdb] — snapshot [sdb], derive the target
    schema, build the empty target replica and the pending set.
    Cheap: no data is translated yet. *)
val start :
  ?config:config -> shard_id:int -> Supervisor.request -> Sdb.t ->
  (t * Supervisor.servable, string * string) result

val total : t -> int
val n_done : t -> int
val watermark : t -> int
val failed : t -> string option
val mark_failed : t -> string -> unit
val summary : t -> summary

(** The target replica as served.  Dual-applied writes advance the
    shard's copy outside the loader: [sync_engine_db] pushes the
    current served state in before a merge, [engine_db] reads the
    merged state back. *)

val engine_db : t -> Engines.database
val sync_engine_db : t -> Engines.database -> unit

(** Navigation-depth cap the per-record translation closure covers
    (= {!Ccv_analysis.Depth.default_cap}): the drained record, its link
    partners, and their partners. *)
val hop_cap : int

(** Static admission check: requests whose access paths navigate more
    than {!hop_cap} association hops cannot be faulted in consistently
    and must be refused {e before} the dual-run, with the offending
    path named in the diagnostic. *)
val admit : Aprog.t -> (unit, Ccv_common.Diagnostic.t) result

(** Record an admission refusal in the shard's migration warnings
    (deduplicated), so the pool report shows which access paths were
    turned away. *)
val note_refusal : t -> Ccv_common.Diagnostic.t -> unit

(** Fault in the request's touch set; returns the number of records
    translated on demand.  No-op once failed. *)
val prepare_request : t -> Aprog.t -> int

(** Advance the backfill watermark to [to_] (clamped to [total]),
    draining every still-pending slot below it.  No-op once failed. *)
val backfill_to : t -> to_:int -> unit

(** Canonical content fingerprint of a semantic instance — rows,
    fields and links sorted, so engine insertion order (bulk load
    vs. record-at-a-time merge) does not show. *)
val fingerprint_of_sdb : Sdb.t -> string

(** Fingerprint of a target replica under [req]'s conversion
    (extracted back to the semantic model, then
    {!fingerprint_of_sdb}). *)
val fingerprint_target :
  Supervisor.request -> Engines.database -> (string, string) result
