(* The deterministic backfill schedule.  Progress is a pure function
   of logical time, shared by the workers (to know how far to drain
   before executing a row) and the coordinator (to decide convergence
   analytically) — no channel, no physical clock, no scheduling
   dependence. *)

let watermark_target ~total ~batch ~lag ~rows e =
  if rows <= 0 then total
  else if e >= rows - 1 then total
  else min total (batch * max 0 (e + 1 - lag))

let converged ~total ~batch ~lag ~rows e =
  watermark_target ~total ~batch ~lag ~rows e >= total
