open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform
open Ccv_convert

type config = {
  batch : int;
  lag : int;
  fail_at_slot : (int * int) option;
}

let default_config = { batch = 64; lag = 1; fail_at_slot = None }

type t = {
  shard_id : int;
  config : config;
  snapshot : Sdb.t;
  ops : Schema_change.op list;
  target_schema : Semantic.t;
  target_model : Mapping.target_model;
  loader : Mapping.loader;
  slots : (string * Row.t) array;
  slot_of : (string * string, int) Hashtbl.t;
  done_ : bool array;
  mutable n_done : int;
  mutable n_faulted : int;  (* slots drained by request fault-in *)
  mutable n_backfilled : int;  (* slots drained by the backfill driver *)
  mutable watermark : int;  (* slots [0, watermark) scanned by backfill *)
  mutable failed : string option;
  mutable warnings : string list;
  merged : (string * string, unit) Hashtbl.t;
      (* target rows already appended to the replica *)
  seen_links : (string, unit) Hashtbl.t;
  mutable partner_index :
    (string * string, (string * Value.t list) list) Hashtbl.t option;
      (* record -> link partners over the immutable snapshot, built on
         first use so [start] stays cheap *)
  mutable row_index : (string * string, int * Row.t) Hashtbl.t option;
      (* (entity, key) -> extent position and row over the snapshot;
         lets a slice collect exactly its closure instead of filtering
         every full extent per batch *)
  mutable link_index : (string * string, (int * Sdb.link) list) Hashtbl.t option;
      (* (assoc, left key) -> that endpoint's links with their
         link-set positions, same purpose *)
}

type summary = {
  total_slots : int;
  faulted : int;
  backfilled : int;
  mig_warnings : string list;
  mig_failed : string option;
}

let key_repr key = String.concat "|" (List.map Value.show key)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let make_loader target_model target_schema =
  match target_model with
  | Mapping.Rel ->
      let _, rschema = Mapping.derive_relational target_schema in
      Mapping.loader_relational target_schema rschema
  | Mapping.Net ->
      let map, nschema = Mapping.derive_network target_schema in
      Mapping.loader_network map nschema
  | Mapping.Hier ->
      let map, hschema = Mapping.derive_hier target_schema in
      Mapping.loader_hier map hschema

let start ?(config = default_config) ~shard_id (req : Supervisor.request) sdb =
  match Supervisor.prepare_live req sdb with
  | Error e -> Error e
  | Ok (servable, target_schema) ->
      let schema = Sdb.schema sdb in
      let slots =
        Array.of_list
          (List.concat_map
             (fun (e : Semantic.entity) ->
               List.map (fun row -> (e.ename, row)) (Sdb.rows_silent sdb e.ename))
             (Mapping.load_order schema))
      in
      let slot_of = Hashtbl.create (Array.length slots * 2) in
      Array.iteri
        (fun i (ename, row) ->
          let e = Semantic.find_entity_exn schema ename in
          Hashtbl.replace slot_of
            (Field.canon ename, key_repr (Sdb.key_of e row))
            i)
        slots;
      let t =
        { shard_id;
          config;
          snapshot = sdb;
          ops = req.Supervisor.ops;
          target_schema;
          target_model = req.Supervisor.target_model;
          loader = make_loader req.Supervisor.target_model target_schema;
          slots;
          slot_of;
          done_ = Array.make (Array.length slots) false;
          n_done = 0;
          n_faulted = 0;
          n_backfilled = 0;
          watermark = 0;
          failed = None;
          warnings = [];
          merged = Hashtbl.create 256;
          seen_links = Hashtbl.create 256;
          partner_index = None;
          row_index = None;
          link_index = None;
        }
      in
      Ok (t, servable)

let total t = Array.length t.slots
let n_done t = t.n_done
let failed t = t.failed
let mark_failed t msg = if t.failed = None then t.failed <- Some msg

let summary t =
  { total_slots = total t;
    faulted = t.n_faulted;
    backfilled = t.n_backfilled;
    mig_warnings = List.rev t.warnings;
    mig_failed = t.failed;
  }

(* ------------------------------------------------------------------ *)
(* Engine replica sync.  Dual-applied writes advance the shard's
   target database outside the loader; push the current replica in
   before a merge and read it back after, so merges append to the
   served state. *)

let engine_db t : Engines.database =
  match t.target_model with
  | Mapping.Rel -> Engines.Rel_db (Mapping.loader_rdb t.loader)
  | Mapping.Net -> Engines.Net_db (Mapping.loader_ndb t.loader)
  | Mapping.Hier -> Engines.Hier_db (Mapping.loader_hdb t.loader)

let sync_engine_db t (db : Engines.database) =
  match (t.target_model, db) with
  | Mapping.Rel, Engines.Rel_db rdb -> Mapping.loader_set_rdb t.loader rdb
  | Mapping.Net, Engines.Net_db ndb -> Mapping.loader_set_ndb t.loader ndb
  | Mapping.Hier, Engines.Hier_db hdb -> Mapping.loader_set_hdb t.loader hdb
  | _ -> invalid_arg "Migrate.sync_engine_db: model mismatch"

(* ------------------------------------------------------------------ *)
(* How a source entity appears in the target schema (identity through
   most ops, renamed by [Rename_entity], gone after [Collapse]). *)

let entity_image ops ename =
  List.fold_left
    (fun acc op ->
      match acc with
      | None -> None
      | Some name -> (
          match op with
          | Schema_change.Rename_entity { from_; to_ }
            when Field.name_equal from_ name -> Some to_
          | Schema_change.Collapse { removed_entity; _ }
            when Field.name_equal removed_entity name -> None
          | _ -> Some name))
    (Some ename) ops

(* Target entities that are no source entity's image (e.g. an
   Interpose's new entity): their translated rows exist only as a
   function of the slice, so every one the slice produces merges. *)
let derived_entities t =
  let source_images =
    List.filter_map
      (fun (e : Semantic.entity) -> entity_image t.ops e.ename)
      (Sdb.schema t.snapshot).Semantic.entities
  in
  List.filter
    (fun (e : Semantic.entity) ->
      not (List.exists (Field.name_equal e.ename) source_images))
    t.target_schema.Semantic.entities

(* ------------------------------------------------------------------ *)
(* Slice closure and merge.

   A batch [B] of source records is translated together with its link
   partners (hop 1) and their partners (hop 2), so ops that compute
   across links (Interpose groupings, Collapse field pulls) see the
   same context they would in a bulk translation.  Rows merged into
   the replica: images of B and hop 1 plus all derived-entity rows —
   hop 2 is context only.  Covering two hops makes every hop-1 row's
   own link neighbourhood complete; schemas whose ops reach deeper
   than two associations are out of scope (ours have at most two). *)

(* One pass over the snapshot's links, memoized: the snapshot never
   changes, and per-record link scans would make an entity drain
   quadratic in the instance size. *)
let partner_index t =
  match t.partner_index with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create 1024 in
      let add ename key partner =
        let k = (Field.canon ename, key_repr key) in
        Hashtbl.replace idx k
          (partner :: Option.value (Hashtbl.find_opt idx k) ~default:[])
      in
      let schema = Sdb.schema t.snapshot in
      List.iter
        (fun (a : Semantic.assoc) ->
          List.iter
            (fun (l : Sdb.link) ->
              add a.left l.lkey (Field.canon a.right, l.rkey);
              add a.right l.rkey (Field.canon a.left, l.lkey))
            (Sdb.links_silent t.snapshot a.aname))
        schema.Semantic.assocs;
      t.partner_index <- Some idx;
      idx

let partners_of t (ename, key) =
  Option.value
    (Hashtbl.find_opt (partner_index t) (Field.canon ename, key_repr key))
    ~default:[]

(* Positional indexes over the immutable snapshot, memoized like
   [partner_index]: slice assembly looks up exactly the closure's rows
   and links instead of filtering every full extent and link set per
   batch, which made a drain quadratic in the instance size.  The
   recorded positions let a slice keep extent/link-set order, so the
   assembled sub-instance is byte-identical to the filtering one. *)
let row_index t =
  match t.row_index with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create 1024 in
      let schema = Sdb.schema t.snapshot in
      List.iter
        (fun (e : Semantic.entity) ->
          List.iteri
            (fun i row ->
              Hashtbl.replace idx
                (Field.canon e.ename, key_repr (Sdb.key_of e row))
                (i, row))
            (Sdb.rows_silent t.snapshot e.ename))
        schema.Semantic.entities;
      t.row_index <- Some idx;
      idx

let link_index t =
  match t.link_index with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create 1024 in
      let schema = Sdb.schema t.snapshot in
      List.iter
        (fun (a : Semantic.assoc) ->
          List.iteri
            (fun i (l : Sdb.link) ->
              let k = (Field.canon a.aname, key_repr l.lkey) in
              Hashtbl.replace idx k
                ((i, l) :: Option.value (Hashtbl.find_opt idx k) ~default:[]))
            (Sdb.links_silent t.snapshot a.aname))
        schema.Semantic.assocs;
      t.link_index <- Some idx;
      idx

let in_position_order xs =
  List.map snd (List.sort (fun (i, _) (j, _) -> compare (i : int) j) xs)

let merge_batch t ~via (batch : int list) =
  if batch = [] then ()
  else begin
    let schema = Sdb.schema t.snapshot in
    let seen : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
    let frontier = ref [] in
    let add (ename, key) =
      let ck = (Field.canon ename, key_repr key) in
      if not (Hashtbl.mem seen ck) then begin
        Hashtbl.replace seen ck ();
        frontier := (ename, key) :: !frontier
      end
    in
    let b_records =
      List.map
        (fun slot ->
          let ename, row = t.slots.(slot) in
          let e = Semantic.find_entity_exn schema ename in
          (ename, Sdb.key_of e row))
        batch
    in
    List.iter add b_records;
    let hop1 = ref [] in
    let expand collect =
      let prev = !frontier in
      frontier := [];
      List.iter
        (fun r ->
          List.iter
            (fun p ->
              let ck = (fst p, key_repr (snd p)) in
              if not (Hashtbl.mem seen ck) then begin
                Hashtbl.replace seen ck ();
                frontier := p :: !frontier;
                if collect then hop1 := p :: !hop1
              end)
            (partners_of t r))
        prev
    in
    expand true;
    expand false;
    (* Assemble the slice: rows for every seen record, links with both
       endpoints inside — via the memoized snapshot indexes, so the
       work is proportional to the closure, not the instance. *)
    let seen_by_entity : (string, string list) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (en, kr) () ->
        Hashtbl.replace seen_by_entity en
          (kr :: Option.value (Hashtbl.find_opt seen_by_entity en) ~default:[]))
      seen;
    let seen_keys en =
      Option.value (Hashtbl.find_opt seen_by_entity en) ~default:[]
    in
    let ridx = row_index t and lidx = link_index t in
    let slice_rows =
      List.map
        (fun (e : Semantic.entity) ->
          let en = Field.canon e.ename in
          ( e.ename,
            in_position_order
              (List.filter_map
                 (fun kr -> Hashtbl.find_opt ridx (en, kr))
                 (seen_keys en)) ))
        schema.Semantic.entities
    in
    let slice_links =
      List.map
        (fun (a : Semantic.assoc) ->
          let an = Field.canon a.aname in
          let right = Field.canon a.right in
          ( a.aname,
            in_position_order
              (List.concat_map
                 (fun kr ->
                   List.filter
                     (fun (_, (l : Sdb.link)) ->
                       Hashtbl.mem seen (right, key_repr l.rkey))
                     (Option.value (Hashtbl.find_opt lidx (an, kr)) ~default:[]))
                 (seen_keys (Field.canon a.left))) ))
        schema.Semantic.assocs
    in
    (match
       Data_translate.translate_slice ~snapshot:t.snapshot ~ops:t.ops
         ~rows:slice_rows ~links:slice_links
     with
    | Error msg -> mark_failed t msg
    | Ok (tslice, _slice_warnings) ->
        (* Accept the images of B and hop 1 (insert-if-absent). *)
        let accept = b_records @ List.rev !hop1 in
        let accepted_rows : (string, Row.t list) Hashtbl.t =
          Hashtbl.create 16
        in
        let push tbl k v =
          Hashtbl.replace tbl k (v :: (try Hashtbl.find tbl k with Not_found -> []))
        in
        List.iter
          (fun (ename, key) ->
            match entity_image t.ops ename with
            | None -> ()
            | Some tname -> (
                let ck = (Field.canon tname, key_repr key) in
                if not (Hashtbl.mem t.merged ck) then
                  match Sdb.find_entity tslice tname key with
                  | Some trow ->
                      Hashtbl.replace t.merged ck ();
                      push accepted_rows (Field.canon tname) trow
                  | None ->
                      (* legitimately absent: e.g. filtered out by a
                         Restrict_extension *)
                      ()))
          accept;
        List.iter
          (fun (e : Semantic.entity) ->
            List.iter
              (fun trow ->
                let ck =
                  (Field.canon e.ename, key_repr (Sdb.key_of e trow))
                in
                if not (Hashtbl.mem t.merged ck) then begin
                  Hashtbl.replace t.merged ck ();
                  push accepted_rows (Field.canon e.ename) trow
                end)
              (Sdb.rows_silent tslice e.ename))
          (derived_entities t);
        (* Links: both endpoints merged, not seen before. *)
        let accepted_links : (string, Sdb.link list) Hashtbl.t =
          Hashtbl.create 16
        in
        List.iter
          (fun (a : Semantic.assoc) ->
            List.iter
              (fun (l : Sdb.link) ->
                let lk =
                  Fmt.str "%s|%s->%s" (Field.canon a.aname) (key_repr l.lkey)
                    (key_repr l.rkey)
                in
                if
                  (not (Hashtbl.mem t.seen_links lk))
                  && Hashtbl.mem t.merged
                       (Field.canon a.left, key_repr l.lkey)
                  && Hashtbl.mem t.merged
                       (Field.canon a.right, key_repr l.rkey)
                then begin
                  Hashtbl.replace t.seen_links lk ();
                  push accepted_links (Field.canon a.aname) l
                end)
              (Sdb.links_silent tslice a.aname))
          t.target_schema.Semantic.assocs;
        let to_list tbl = Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl [] in
        let ws =
          Mapping.loader_add t.loader ~rows:(to_list accepted_rows)
            ~links:(to_list accepted_links)
        in
        t.warnings <- List.rev_append ws t.warnings);
    (* B is drained either way — a failed migration serves source-only
       from here on, it does not retry the slice. *)
    List.iter
      (fun slot ->
        if not t.done_.(slot) then begin
          t.done_.(slot) <- true;
          t.n_done <- t.n_done + 1;
          match via with
          | `Fault -> t.n_faulted <- t.n_faulted + 1
          | `Backfill -> t.n_backfilled <- t.n_backfilled + 1
        end)
      batch
  end

(* ------------------------------------------------------------------ *)
(* Request touch sets: which pending records a request may read or
   write on the target side.  Key-equality lookups demand just that
   record; anything else (scans, traversals, non-key qualifications)
   demands the whole entity, so a request is always fully faulted in
   before it is dual-run — no partial extents behind a shadowed
   request. *)

type demand = Key of string * Value.t list | All of string

let demand_of_qual schema target qual =
  match Semantic.find_entity schema target with
  | None -> []
  | Some e -> (
      let conjs = List.filter_map Cond.as_field_eq_const (Cond.split_conjuncts qual) in
      let key_vals =
        List.map
          (fun k ->
            List.find_map
              (fun (f, v) -> if Field.name_equal f k then Some v else None)
              conjs)
          e.key
      in
      if List.for_all Option.is_some key_vals then
        [ Key (e.ename, List.map Option.get key_vals) ]
      else [ All e.ename ])

let demands_of_step schema = function
  | Apattern.Self { target; qual } -> demand_of_qual schema target qual
  | Apattern.Through { target; _ } -> [ All target ]
  | Apattern.Assoc_via { assoc; _ } | Apattern.Via_assoc { assoc; _ } -> (
      match Semantic.find_assoc schema assoc with
      | Some a -> [ All a.left; All a.right ]
      | None -> [])

let demands_of_query schema q = List.concat_map (demands_of_step schema) q

let const_exprs exprs =
  let vals =
    List.map (function Cond.Const v -> Some v | _ -> None) exprs
  in
  if vals <> [] && List.for_all Option.is_some vals then
    Some (List.map Option.get vals)
  else None

(* Demands of the mutation statements (queries are handled by the
   traversal kit's query hook below). *)
let demands_of_mutation schema = function
  | Aprog.Insert { entity; values; connects } ->
      let own =
        match Semantic.find_entity schema entity with
        | None -> []
        | Some e -> (
            let key_exprs =
              List.map
                (fun k ->
                  List.find_map
                    (fun (f, x) -> if Field.name_equal f k then Some x else None)
                    values)
                e.key
            in
            if List.for_all Option.is_some key_exprs then
              match const_exprs (List.map Option.get key_exprs) with
              | Some vals -> [ Key (e.ename, vals) ]
              | None -> [ All e.ename ]
            else [ All e.ename ])
      in
      own
      @ List.concat_map
          (fun (aname, exprs) ->
            match Semantic.find_assoc schema aname with
            | None -> []
            | Some a -> (
                match const_exprs exprs with
                | Some vals -> [ Key (a.left, vals) ]
                | None -> [ All a.left ]))
          connects
  | Aprog.Link { assoc; left_key; right_key; _ }
  | Aprog.Unlink { assoc; left_key; right_key } -> (
      match Semantic.find_assoc schema assoc with
      | None -> []
      | Some a ->
          let side ename exprs =
            match const_exprs exprs with
            | Some vals -> [ Key (ename, vals) ]
            | None -> [ All ename ]
          in
          side a.left left_key @ side a.right right_key)
  | _ -> []

module FT = Traverse.Fold (Traverse.Unit_env)

let demands_of_aprog schema (p : Aprog.t) =
  let folder =
    { FT.default with
      FT.query = (fun _ () acc q -> acc @ demands_of_query schema q);
      FT.stmt =
        (fun _ () acc s ->
          match s with
          | Aprog.Insert _ | Aprog.Link _ | Aprog.Unlink _ ->
              Some (acc @ demands_of_mutation schema s)
          | _ -> None);
    }
  in
  FT.program folder () [] p

let slots_of_demand t = function
  | Key (ename, key) -> (
      match Hashtbl.find_opt t.slot_of (Field.canon ename, key_repr key) with
      | Some slot when not t.done_.(slot) -> [ slot ]
      | Some _ | None -> [])
  | All ename ->
      let acc = ref [] in
      Array.iteri
        (fun i (en, _) ->
          if (not t.done_.(i)) && Field.name_equal en ename then acc := i :: !acc)
        t.slots;
      List.rev !acc

(* ------------------------------------------------------------------ *)
(* Admission.  The closure translated per drained record covers two
   association hops (the record, its partners, their partners), so a
   request navigating deeper could observe a partially-translated
   neighbourhood.  The analyzer's depth pass decides statically;
   refusing at admission names the offending access path instead of
   surfacing a generic serving-time error mid-request. *)

let hop_cap = Ccv_analysis.Depth.default_cap

let admit aprog = Ccv_analysis.Depth.check ~cap:hop_cap aprog

let note_refusal t (d : Diagnostic.t) =
  let line = Fmt.str "admission refused [%s]: %s" d.code d.message in
  if not (List.mem line t.warnings) then t.warnings <- line :: t.warnings

(* [prepare_request t aprog] — fault in everything the request may
   touch; returns the number of records translated on demand. *)
let prepare_request t aprog =
  if t.failed <> None then 0
  else begin
    let schema = Sdb.schema t.snapshot in
    let slots =
      List.sort_uniq compare
        (List.concat_map (slots_of_demand t) (demands_of_aprog schema aprog))
    in
    merge_batch t ~via:`Fault slots;
    List.length slots
  end

(* ------------------------------------------------------------------ *)
(* Backfill: drain slots [watermark, to_) in batches.  The injected
   fault fires when the scan crosses the configured slot — the crash
   the rollback test recovers from. *)

let backfill_to t ~to_ =
  if t.failed <> None then ()
  else begin
    let to_ = min to_ (total t) in
    if to_ > t.watermark then begin
      (match t.config.fail_at_slot with
      | Some (shard, slot)
        when shard = t.shard_id && slot >= t.watermark && slot < to_ ->
          mark_failed t
            (Fmt.str "injected backfill fault at shard %d slot %d" t.shard_id
               slot)
      | Some _ | None ->
          let pending = ref [] in
          for i = t.watermark to to_ - 1 do
            if not t.done_.(i) then pending := i :: !pending
          done;
          merge_batch t ~via:`Backfill (List.rev !pending));
      if t.failed = None then t.watermark <- to_
    end
  end

let watermark t = t.watermark

(* ------------------------------------------------------------------ *)
(* Canonical fingerprint of a semantic instance: rows sorted per
   entity, fields sorted per row, links sorted per association — the
   physical insertion order an engine happens to use (eager bulk load
   vs. record-at-a-time merges) does not show. *)

let fingerprint_of_sdb sdb =
  let schema = Sdb.schema sdb in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Semantic.entity) ->
      Buffer.add_string buf ("E:" ^ Field.canon e.ename ^ "\n");
      let rows =
        List.sort compare
          (List.map
             (fun row ->
               String.concat ";"
                 (List.sort compare
                    (List.map
                       (fun (f, v) -> Field.canon f ^ "=" ^ Value.show v)
                       (Row.to_list row))))
             (Sdb.rows_silent sdb e.ename))
      in
      List.iter (fun r -> Buffer.add_string buf (r ^ "\n")) rows)
    schema.Semantic.entities;
  List.iter
    (fun (a : Semantic.assoc) ->
      Buffer.add_string buf ("A:" ^ Field.canon a.aname ^ "\n");
      let links =
        List.sort compare
          (List.map
             (fun (l : Sdb.link) ->
               Fmt.str "%s->%s;%s" (key_repr l.lkey) (key_repr l.rkey)
                 (String.concat ";"
                    (List.sort compare
                       (List.map
                          (fun (f, v) -> Field.canon f ^ "=" ^ Value.show v)
                          (Row.to_list l.attrs)))))
             (Sdb.links_silent sdb a.aname))
      in
      List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) links)
    schema.Semantic.assocs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Fingerprint of a target replica under [req]'s conversion, whether
   it was bulk-prepared or merged record by record. *)
let fingerprint_target (req : Supervisor.request) (db : Engines.database) =
  match Schema_change.apply_all req.Supervisor.source_schema req.Supervisor.ops with
  | Error e -> Error e
  | Ok target_schema -> (
      match (req.Supervisor.target_model, db) with
      | Mapping.Rel, Engines.Rel_db rdb ->
          Ok (fingerprint_of_sdb (Mapping.extract_relational target_schema rdb))
      | Mapping.Net, Engines.Net_db ndb ->
          let map = Supervisor.mapping_for Mapping.Net target_schema in
          Ok (fingerprint_of_sdb (Mapping.extract_network map ndb))
      | Mapping.Hier, Engines.Hier_db hdb ->
          let map = Supervisor.mapping_for Mapping.Hier target_schema in
          Ok (fingerprint_of_sdb (Mapping.extract_hier map hdb))
      | _ -> Error "fingerprint_target: model/database mismatch")
