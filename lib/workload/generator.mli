(** Seeded random program workloads over a semantic schema — the
    synthetic stand-in for the "large classes of programs" §5.3 says a
    conversion system must be tried against.  Constants in
    qualifications are drawn from a sample instance so that
    qualifications select non-trivially. *)

open Ccv_common
open Ccv_model
open Ccv_abstract

type family =
  | Retrieval  (** FOR EACH chains ending in DISPLAY *)
  | Lookup  (** FIRST with present/absent branches *)
  | Insertion  (** guarded insert with connections *)
  | Modification  (** UPDATE over a selected set *)
  | Deletion  (** DELETE with cascade *)

val pp_family : Format.formatter -> family -> unit
val all_families : family list

(** [random_program rng schema ~sample ~family i] — [i] seeds fresh
    key values for insertions.  [skew] (default [0.], uniform) biases
    key and constant draws toward early sample rows with Zipf rank
    weights [rank^-skew], producing hot-key traffic; [0.] consumes the
    PRNG exactly like the unskewed generator, so existing seeded
    workloads are unchanged. *)
val random_program :
  Prng.t -> ?skew:float -> Semantic.t -> sample:Sdb.t -> family:family ->
  int -> Aprog.t

(** A batch across families with the given mix (weights) and key
    popularity [skew] (see {!random_program}). *)
val batch :
  seed:int -> Semantic.t -> sample:Sdb.t -> n:int ->
  ?mix:(int * family) list -> ?skew:float -> unit -> (family * Aprog.t) list

(** Hand-mutated network-program variants that fall outside the
    template library or trip §3.2 hazards, for the analyzer-coverage
    experiment: (description, program, expected-to-analyze). *)
val non_template_variants :
  Semantic.t -> (string * Ccv_network.Dml.t Host.program * bool) list
