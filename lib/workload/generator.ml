open Ccv_common
open Ccv_model
open Ccv_abstract

type family = Retrieval | Lookup | Insertion | Modification | Deletion

let pp_family ppf f =
  Fmt.string ppf
    (match f with
    | Retrieval -> "retrieval"
    | Lookup -> "lookup"
    | Insertion -> "insertion"
    | Modification -> "modification"
    | Deletion -> "deletion")

let all_families = [ Retrieval; Lookup; Insertion; Modification; Deletion ]

(* Zipf-ranked pick over extent order: the i-th row (rank i+1) weighs
   1/(i+1)^skew, so early extent rows become the hot keys.  [skew = 0]
   must stay byte-identical to the uniform path — same Prng consumption
   — so every seeded workload generated before this option existed is
   unchanged. *)
let pick_ranked rng ~skew xs =
  if skew <= 0. then Prng.pick rng xs
  else begin
    let w = Array.of_list (List.mapi (fun i x -> (float (i + 1) ** -.skew, x)) xs) in
    let total = Array.fold_left (fun acc (wi, _) -> acc +. wi) 0. w in
    let u = Prng.float rng total in
    let n = Array.length w in
    let rec go i acc =
      if i >= n - 1 then snd w.(n - 1)
      else
        let acc = acc +. fst w.(i) in
        if u < acc then snd w.(i) else go (i + 1) acc
    in
    go 0 0.
  end

(* A value of the given entity field drawn from the sample. *)
let sample_value rng ~skew sdb (e : Semantic.entity) field =
  let rows = Sdb.rows_silent sdb e.ename in
  match rows with
  | [] -> Value.Str "NONE"
  | _ ->
      let row = pick_ranked rng ~skew rows in
      Option.value (Row.get row field) ~default:Value.Null

let sample_key rng ~skew sdb (e : Semantic.entity) =
  List.map (fun k -> sample_value rng ~skew sdb e k) e.key

let random_qual rng ~skew sdb (e : Semantic.entity) =
  match Prng.int rng 3 with
  | 0 -> Cond.True
  | _ -> (
      let f = Prng.pick rng e.fields in
      let v = sample_value rng ~skew sdb e f.Field.name in
      match v with
      | Value.Int _ when Prng.bool rng ->
          Cond.Cmp (Cond.Ge, Cond.Field f.Field.name, Cond.Const v)
      | _ -> Cond.Cmp (Cond.Eq, Cond.Field f.Field.name, Cond.Const v))

(* Build a random access chain starting at a random entity, optionally
   hopping through associations (downward or upward). *)
let random_chain rng ~skew schema sdb =
  let entity = Prng.pick rng schema.Semantic.entities in
  let first =
    Apattern.Self { target = entity.ename; qual = random_qual rng ~skew sdb entity }
  in
  let rec extend current steps budget =
    if budget = 0 then List.rev steps
    else
      let assocs = Semantic.assocs_of schema current in
      let assocs =
        (* avoid immediately bouncing back through the same assoc *)
        match steps with
        | Apattern.Via_assoc { assoc; _ } :: _ ->
            List.filter
              (fun (a : Semantic.assoc) ->
                not (Field.name_equal a.aname assoc))
              assocs
        | _ -> assocs
      in
      match assocs with
      | [] -> List.rev steps
      | _ ->
          if Prng.int rng 3 = 0 then List.rev steps
          else
            let a = Prng.pick rng assocs in
            let going_down = Field.name_equal a.left current in
            let target = if going_down then a.right else a.left in
            let tgt = Semantic.find_entity_exn schema target in
            let qual = random_qual rng ~skew sdb tgt in
            extend target
              (Apattern.Via_assoc { target; assoc = a.aname; qual }
               :: Apattern.Assoc_via
                    { assoc = a.aname; source = current; qual = Cond.True }
               :: steps)
              (budget - 1)
  in
  (entity, extend entity.ename [ first ] (Prng.int rng 3))

let display_of rng schema query =
  let candidates =
    List.concat_map
      (fun name ->
        match Semantic.find_entity schema name with
        | Some e ->
            List.map
              (fun (f : Field.t) -> Cond.Var (e.ename ^ "." ^ f.name))
              e.fields
        | None -> (
            match Semantic.find_assoc schema name with
            | Some a ->
                List.map
                  (fun (f : Field.t) ->
                    Cond.Var (Field.canon a.aname ^ "." ^ f.name))
                  a.fields
            | None -> []))
      (Apattern.names_of query)
  in
  match candidates with
  | [] -> [ Cond.Const (Value.Str "ROW") ]
  | _ ->
      let n = 1 + Prng.int rng (min 3 (List.length candidates)) in
      List.init n (fun _ -> Prng.pick rng candidates)

let fresh_value i (f : Field.t) =
  match f.ty with
  | Value.Tstr -> Value.Str (Printf.sprintf "NEW%04d" i)
  | Value.Tint -> Value.Int (10_000 + i)
  | Value.Tfloat -> Value.Float (float_of_int i)
  | Value.Tbool -> Value.Bool (i mod 2 = 0)

let is_total schema (a : Semantic.assoc) =
  List.exists
    (function
      | Semantic.Total_right x -> Field.name_equal x a.aname
      | Semantic.Total_left _ | Semantic.Participation_limit _
      | Semantic.Field_not_null _ -> false)
    schema.Semantic.constraints
  ||
  match (Semantic.find_entity_exn schema a.right).kind with
  | Semantic.Characterizing o -> Field.name_equal o a.left
  | Semantic.Defined -> false

let rec random_program rng ?(skew = 0.) schema ~sample ~family i =
  match family with
  | Retrieval ->
      let _, query = random_chain rng ~skew schema sample in
      { Aprog.name = Printf.sprintf "GEN-RET-%d" i;
        body =
          [ Aprog.For_each
              { query; body = [ Aprog.Display (display_of rng schema query) ] }
          ];
      }
  | Lookup ->
      let e = Prng.pick rng schema.Semantic.entities in
      let exists = Prng.bool rng in
      let key =
        if exists then sample_key rng ~skew sample e
        else List.map (fun k -> fresh_value (900_000 + i) (Option.get (Field.find e.fields k))) e.key
      in
      let qual =
        Cond.conj
          (List.map2
             (fun k v -> Cond.Cmp (Cond.Eq, Cond.Field k, Cond.Const v))
             e.key key)
      in
      { Aprog.name = Printf.sprintf "GEN-LOOK-%d" i;
        body =
          [ Aprog.First
              { query = [ Apattern.Self { target = e.ename; qual } ];
                present =
                  [ Aprog.Display
                      (Cond.Const (Value.Str "FOUND")
                      :: List.map
                           (fun k -> Cond.Var (e.ename ^ "." ^ k))
                           e.key);
                  ];
                absent = [ Aprog.Display [ Cond.Const (Value.Str "MISSING") ] ];
              };
          ];
      }
  | Insertion ->
      (* Prefer entities whose total associations we can connect. *)
      let e = Prng.pick rng schema.Semantic.entities in
      let values =
        List.map
          (fun (f : Field.t) ->
            if List.exists (Field.name_equal f.name) e.key then
              (f.name, Cond.Const (fresh_value i f))
            else
              (f.name,
               Cond.Const (sample_value rng ~skew sample e f.name)))
          e.fields
      in
      let connects =
        List.filter_map
          (fun (a : Semantic.assoc) ->
            if
              Field.name_equal a.right e.ename
              && a.card = Semantic.One_to_many && a.fields = []
              && (is_total schema a || Prng.bool rng)
              && not (Field.name_equal a.left e.ename)
            then
              let le = Semantic.find_entity_exn schema a.left in
              Some
                (a.aname,
                 List.map (fun v -> Cond.Const v) (sample_key rng ~skew sample le))
            else None)
          (Semantic.assocs_of schema e.ename)
      in
      let key_qual =
        Cond.conj
          (List.filter_map
             (fun k ->
               List.find_map
                 (fun (f, v) ->
                   if Field.name_equal f k then
                     Some (Cond.Cmp (Cond.Eq, Cond.Field k, v))
                   else None)
                 values)
             e.key)
      in
      { Aprog.name = Printf.sprintf "GEN-INS-%d" i;
        body =
          [ Aprog.First
              { query = [ Apattern.Self { target = e.ename; qual = key_qual } ];
                present = [ Aprog.Display [ Cond.Const (Value.Str "EXISTS") ] ];
                absent =
                  [ Aprog.Insert { entity = e.ename; values; connects };
                    Aprog.Display [ Cond.Const (Value.Str "INSERTED") ];
                  ];
              };
          ];
      }
  | Modification ->
      let e = Prng.pick rng schema.Semantic.entities in
      let non_key =
        List.filter
          (fun (f : Field.t) ->
            not (List.exists (Field.name_equal f.name) e.key))
          e.fields
      in
      (match non_key with
      | [] ->
          (* fall back to a retrieval when nothing is updatable *)
          random_program rng ~skew schema ~sample ~family:Retrieval i
      | _ ->
          let f = Prng.pick rng non_key in
          let assign =
            match f.ty with
            | Value.Tint ->
                ( f.Field.name,
                  Cond.Add
                    ( Cond.Var (e.ename ^ "." ^ f.Field.name),
                      Cond.Const (Value.Int 1) ) )
            | Value.Tstr | Value.Tfloat | Value.Tbool ->
                (f.Field.name, Cond.Const (sample_value rng ~skew sample e f.Field.name))
          in
          { Aprog.name = Printf.sprintf "GEN-MOD-%d" i;
            body =
              [ Aprog.Update
                  { query =
                      [ Apattern.Self
                          { target = e.ename; qual = random_qual rng ~skew sample e }
                      ];
                    assigns = [ assign ];
                  };
                Aprog.Display [ Cond.Const (Value.Str "UPDATED") ];
              ];
          })
  | Deletion ->
      let e = Prng.pick rng schema.Semantic.entities in
      let key = sample_key rng ~skew sample e in
      let qual =
        Cond.conj
          (List.map2
             (fun k v -> Cond.Cmp (Cond.Eq, Cond.Field k, Cond.Const v))
             e.key key)
      in
      { Aprog.name = Printf.sprintf "GEN-DEL-%d" i;
        body =
          [ Aprog.Delete
              { query = [ Apattern.Self { target = e.ename; qual } ];
                cascade = true;
              };
            Aprog.Display [ Cond.Const (Value.Str "DELETED") ];
          ];
      }

let batch ~seed schema ~sample ~n
    ?(mix =
      [ (4, Retrieval); (2, Lookup); (2, Insertion); (1, Modification);
        (1, Deletion);
      ]) ?(skew = 0.) () =
  let rng = Prng.create ~seed in
  List.init n (fun i ->
      let family = Prng.pick_weighted rng mix in
      (family, random_program rng ~skew schema ~sample ~family i))

(* Hand-built network programs for analyzer coverage (E7). *)
let non_template_variants _schema =
  let open Ccv_network in
  let find_any r = Host.Dml (Dml.Find (Dml.Any (r, Cond.True))) in
  let find_dup r = Host.Dml (Dml.Find (Dml.Duplicate (r, Cond.True))) in
  let scan_loop =
    { Host.name = "TPL-SCAN";
      body =
        [ find_any "EMP";
          Host.While
            ( Host.status_ok,
              [ Host.Dml (Dml.Get "EMP");
                Host.Display [ Host.v "EMP.EMP-NAME" ];
                find_dup "EMP";
              ] );
        ];
    }
  in
  let set_loop =
    { Host.name = "TPL-SET";
      body =
        [ find_any "DIV";
          Host.While
            ( Host.status_ok,
              [ Host.Dml (Dml.Get "DIV");
                Host.Dml (Dml.Find (Dml.First_within ("EMP", "DIV-EMP", Cond.True)));
                Host.While
                  ( Host.status_ok,
                    [ Host.Dml (Dml.Get "EMP");
                      Host.Display [ Host.v "EMP.EMP-NAME" ];
                      Host.Dml
                        (Dml.Find (Dml.Next_within ("EMP", "DIV-EMP", Cond.True)));
                    ] );
                find_dup "DIV";
              ] );
        ];
    }
  in
  let status_code =
    { Host.name = "HAZ-STATUS";
      body =
        [ find_any "EMP";
          Host.If
            ( Cond.Cmp
                ( Cond.Eq,
                  Cond.Var Host.status_var,
                  Cond.Const (Value.Str "0307") ),
              [ Host.Display [ Host.str "EOS" ] ],
              [] );
        ];
    }
  in
  let process_first =
    { Host.name = "HAZ-FIRST";
      body =
        [ find_any "DIV";
          Host.While
            ( Host.status_ok,
              [ Host.Dml (Dml.Get "DIV");
                Host.Dml
                  (Dml.Find (Dml.First_within ("EMP", "DIV-EMP", Cond.True)));
                Host.If
                  ( Host.status_ok,
                    [ Host.Dml (Dml.Get "EMP");
                      Host.Display [ Host.v "EMP.EMP-NAME" ];
                    ],
                    [] );
                find_dup "DIV";
              ] );
        ];
    }
  in
  let missing_get =
    { Host.name = "NT-NO-GET";
      body =
        [ find_any "EMP";
          Host.While
            (Host.status_ok, [ Host.Display [ Host.str "HIT" ]; find_dup "EMP" ]);
        ];
    }
  in
  let flag_loop =
    { Host.name = "NT-FLAG";
      body =
        [ Host.Move (Host.int 0, "DONE");
          Host.While
            ( Cond.Cmp (Cond.Eq, Cond.Var "DONE", Cond.Const (Value.Int 0)),
              [ find_any "EMP"; Host.Move (Host.int 1, "DONE") ] );
        ];
    }
  in
  let mixed_currency =
    { Host.name = "NT-CURRENCY";
      body =
        [ find_any "DIV";
          Host.Dml (Dml.Find (Dml.First_within ("EMP", "DIV-EMP", Cond.True)));
          Host.Dml (Dml.Get "EMP");
          find_any "DIV";
          Host.Dml (Dml.Find (Dml.Owner_within "DIV-EMP"));
          Host.Display [ Host.str "?" ];
        ];
    }
  in
  [ ("canonical scan loop", scan_loop, true);
    ("canonical set loop", set_loop, true);
    ("raw status-code test", status_code, false);
    ("process-first idiom", process_first, true);
    ("scan loop without GET", missing_get, false);
    ("flag-controlled loop", flag_loop, false);
    ("free currency navigation", mixed_currency, false);
  ]
