(* Per-slot work-stealing deques over atomic immutable lists.

   Each slot owns one deque; the owner pushes and pops at the head
   (LIFO — the token it just ran is the one whose shard state is hot in
   cache), parks blocked tokens at the tail, and thieves take from the
   tail (FIFO — the oldest token is the one its owner has neglected
   longest).  A deque is a whole immutable list in one [Atomic.t]; every
   mutation is a CAS of the entire list.  That is O(n) for tail
   operations, but n is bounded by the token count (shards, a few
   dozen), and the scheme buys the property the epoch scheduler builds
   its exactly-once argument on: a successful CAS removes an element
   atomically, so a token lives in exactly one deque or in exactly one
   worker's hands — never two.

   The CAS also carries the ownership handoff: everything the previous
   holder wrote to the token's shard before pushing it is visible to
   whoever pops or steals it next (plain writes sequenced before an
   atomic write are visible to readers of that atomic). *)

type 'a t = { deques : 'a list Atomic.t array }

let create ~slots = { deques = Array.init (max 1 slots) (fun _ -> Atomic.make []) }

let slots t = Array.length t.deques

let rec cas_update cell f =
  let old = Atomic.get cell in
  let now, out = f old in
  if Atomic.compare_and_set cell old now then out else cas_update cell f

let push t ~slot x = cas_update t.deques.(slot) (fun l -> (x :: l, ()))

(* Park at the tail: the owner cycles past a blocked token instead of
   spinning on it, and a thief will find it first. *)
let push_back t ~slot x = cas_update t.deques.(slot) (fun l -> (l @ [ x ], ()))

let pop t ~slot =
  cas_update t.deques.(slot) (function
    | [] -> ([], None)
    | x :: rest -> (rest, Some x))

let steal_from t victim =
  cas_update t.deques.(victim) (fun l ->
      match List.rev l with
      | [] -> ([], None)
      | x :: rest_rev -> (List.rev rest_rev, Some x))

(* Scan victims round-robin from the thief's right neighbour — a
   deterministic probe order, so contention spreads instead of every
   thief hammering slot 0. *)
let steal t ~thief =
  let n = slots t in
  let rec go k =
    if k >= n then None
    else
      let v = (thief + k) mod n in
      if v = thief then go (k + 1)
      else
        match steal_from t v with Some _ as r -> r | None -> go (k + 1)
  in
  go 1

type 'a claim = Own of 'a | Stolen of 'a | Empty

(* One claim: local LIFO first, then steal. *)
let claim t ~slot =
  match pop t ~slot with
  | Some x -> Own x
  | None -> ( match steal t ~thief:slot with Some x -> Stolen x | None -> Empty)

let length t =
  Array.fold_left (fun acc d -> acc + List.length (Atomic.get d)) 0 t.deques
