(** Work-stealing deques for the epoch scheduler.

    One deque per worker slot.  The owner treats its deque as a LIFO
    stack ({!push} / {!pop}); blocked work is parked at the tail with
    {!push_back}; an idle slot takes the {e oldest} entry of another
    slot's deque with {!steal} (FIFO from the victim's point of view).

    Deques hold opaque {e tokens}.  The epoch scheduler's tokens are
    shard cursors: holding one is the exclusive right to run that
    shard's next ready row, so shard state needs no lock — exclusivity
    travels through the queue.  Every transfer is a single CAS on the
    victim deque, which gives the two properties the scheduler's
    exactly-once argument needs:

    - {b no duplication}: a successful CAS removes the token from the
      deque atomically — two claimants cannot both obtain it;
    - {b no loss}: a token is always either in exactly one deque or
      held by the worker that popped/stole it (and is pushed back or
      retired by that worker).

    The CAS also orders memory: whatever the previous holder wrote
    before releasing the token is visible to the next holder. *)

type 'a t

(** [create ~slots] — one empty deque per slot (clamped to ≥ 1). *)
val create : slots:int -> 'a t

val slots : 'a t -> int

(** Owner push, head of [slot]'s deque (LIFO). *)
val push : 'a t -> slot:int -> 'a -> unit

(** Owner push at the tail — parks a currently-blocked token where the
    owner will retry it last and a thief will find it first. *)
val push_back : 'a t -> slot:int -> 'a -> unit

(** Owner pop from the head; [None] when the deque is empty. *)
val pop : 'a t -> slot:int -> 'a option

(** Take the oldest entry of some other slot's deque, probing victims
    round-robin from [thief + 1]; [None] when every other deque is
    empty.  Safe from any domain. *)
val steal : 'a t -> thief:int -> 'a option

type 'a claim =
  | Own of 'a  (** popped from the claimant's own deque *)
  | Stolen of 'a  (** taken from another slot's deque *)
  | Empty  (** every deque empty (work may still be in flight) *)

(** [claim t ~slot] — local LIFO pop first, then steal. *)
val claim : 'a t -> slot:int -> 'a claim

(** Total tokens currently enqueued across all deques (racy under
    concurrent mutation — meant for tests and termination checks where
    the caller knows the queue is quiescent). *)
val length : 'a t -> int
