type event =
  | Terminal_out of string
  | Terminal_in of string
  | File_write of string * string
  | File_read of string * string

type t = event list

let equal_event a b =
  match a, b with
  | Terminal_out x, Terminal_out y | Terminal_in x, Terminal_in y ->
      String.equal x y
  | File_write (f1, l1), File_write (f2, l2)
  | File_read (f1, l1), File_read (f2, l2) ->
      String.equal f1 f2 && String.equal l1 l2
  | (Terminal_out _ | Terminal_in _ | File_write _ | File_read _), _ -> false

(* single fused walk: length check and event comparison in one pass,
   short-circuiting at the first mismatch *)
let rec equal a b =
  match a, b with
  | [], [] -> true
  | x :: a', y :: b' -> equal_event x y && equal a' b'
  | _ :: _, [] | [], _ :: _ -> false

let length = List.length

let compare_event a b =
  let tag = function
    | Terminal_out _ -> 0
    | Terminal_in _ -> 1
    | File_write _ -> 2
    | File_read _ -> 3
  in
  match a, b with
  | Terminal_out x, Terminal_out y | Terminal_in x, Terminal_in y ->
      String.compare x y
  | File_write (f1, l1), File_write (f2, l2)
  | File_read (f1, l1), File_read (f2, l2) -> (
      match String.compare f1 f2 with 0 -> String.compare l1 l2 | c -> c)
  | (Terminal_out _ | Terminal_in _ | File_write _ | File_read _), _ ->
      Int.compare (tag a) (tag b)

let pp_event ppf = function
  | Terminal_out s -> Fmt.pf ppf "OUT  %s" s
  | Terminal_in s -> Fmt.pf ppf "IN   %s" s
  | File_write (f, l) -> Fmt.pf ppf "FW   %s: %s" f l
  | File_read (f, l) -> Fmt.pf ppf "FR   %s: %s" f l

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_event) t
let show t = Fmt.str "%a" pp t

let first_divergence a b =
  let rec go i a b =
    match a, b with
    | [], [] -> None
    | x :: a', y :: b' ->
        if equal_event x y then go (i + 1) a' b' else Some (i, Some x, Some y)
    | x :: _, [] -> Some (i, Some x, None)
    | [], y :: _ -> Some (i, None, Some y)
  in
  go 0 a b

let terminal_lines t =
  List.filter_map
    (function
      | Terminal_out s -> Some s
      | Terminal_in _ | File_write _ | File_read _ -> None)
    t

module Builder = struct
  type trace = t
  type t = { mutable rev : event list }

  let create () = { rev = [] }
  let emit b e = b.rev <- e :: b.rev
  let contents b = List.rev b.rev
end
