(** Structured diagnostics with stable codes.

    Replaces the free-form [Refuse of string] payloads: every refusal,
    lint, and inferred fact carries a stable code ([CV0xx] conversion
    refusals, [AD0xx] admission refusals, [LN0xx] lints, [FA0xx]
    inferred facts), an optional offending entity/field/access-path,
    and the human-readable message old callers relied on. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  entity : string option;
  field : string option;
  path : string option;
  message : string;
}

val v :
  code:string -> severity:severity ->
  ?entity:string -> ?field:string -> ?path:string -> string -> t

val errf :
  code:string -> ?entity:string -> ?field:string -> ?path:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a
(** [errf] builds an [Error]-severity diagnostic with a formatted message. *)

val warnf :
  code:string -> ?entity:string -> ?field:string -> ?path:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val inferf :
  code:string -> ?entity:string -> ?field:string -> ?path:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val severity_label : severity -> string

val to_string : t -> string
(** The bare human message — identical to the historical refusal
    string, so callers that match on message words keep working. *)

val to_verbose_string : t -> string
(** ["[CODE] severity: message"]. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One JSON object; no external JSON dependency. *)

val json_escape : string -> string

val count_codes : t list -> (string * int) list
(** Occurrences per stable code, first-seen order. *)
