(* Atomic publication cells.  OCaml [Atomic.t] operations are
   sequentially consistent, so a value fully constructed before
   [publish]/[post] is safely visible to the domain that later [read]s
   or [take_all]s it — the same release/acquire pairing the barrier
   pool got from its mutex, without the mutex. *)

type 'a t = 'a Atomic.t

let cell v = Atomic.make v
let read = Atomic.get
let publish t v = Atomic.set t v

(* The mailbox is a Treiber stack drained whole: the single producer
   pushes with CAS (retrying only against the consumer's exchange), the
   consumer swaps the list for [] and reverses once to recover posting
   order. *)
type 'a mailbox = 'a list Atomic.t

let mailbox () = Atomic.make []

let rec post mb v =
  let cur = Atomic.get mb in
  if not (Atomic.compare_and_set mb cur (v :: cur)) then post mb v

let take_all mb = List.rev (Atomic.exchange mb [])
