(* A persistent domain pool with a barrier-step protocol.  Workers are
   spawned once and parked on a condition variable between steps, so a
   caller issuing thousands of small steps (the serving loop's ticks)
   pays the domain startup cost once instead of per step.

   Synchronization is a single mutex plus two conditions:

     coordinator                        worker i (1 <= i < size)
     -----------                        ------------------------
     publish tasks, pending = n-1       wait until generation moves
     generation++, broadcast ready ---> run tasks.(i)
     run tasks.(0) inline               pending--, signal done when 0
     wait until pending = 0  <---------

   Results are written into caller-local arrays by the task closures
   before the worker touches the mutex to decrement [pending], and the
   coordinator reads them only after observing [pending = 0] under the
   same mutex — that release/acquire pair is what makes the writes
   visible across domains. *)

exception Worker_error of { worker : int; error : exn }

let () =
  Printexc.register_printer (function
    | Worker_error { worker; error } ->
        Some
          (Printf.sprintf "Workpool.Worker_error(worker %d: %s)" worker
             (Printexc.to_string error))
    | _ -> None)

type t = {
  n : int;
  mutex : Mutex.t;
  ready : Condition.t;
  done_ : Condition.t;
  mutable tasks : (unit -> unit) array;  (* slot 0 runs on the caller *)
  mutable generation : int;
  mutable pending : int;
  mutable stop : bool;
  mutable busy : bool;  (* a step is in flight (owner-domain only) *)
  idle_s : float array;  (* per-worker park time, written by that worker *)
  ext_idle_s : float array;  (* caller-charged idle inside a job (no work found) *)
  steal_wait_s : float array;  (* caller-charged time spent probing for steals *)
  async_failures : exn option array;  (* stashed by submit jobs, raised at drain *)
  clock : unit -> float;
  owner : Domain.id;
  mutable workers : unit Domain.t array;
}

let size t = t.n
let nothing () = ()

let worker_loop t i =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    let parked_at = t.clock () in
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.ready t.mutex
    done;
    t.idle_s.(i) <- t.idle_s.(i) +. (t.clock () -. parked_at);
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.generation;
      let task = t.tasks.(i) in
      Mutex.unlock t.mutex;
      task ();
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.done_;
      Mutex.unlock t.mutex
    end
  done

let create ?(clock = Unix.gettimeofday) n =
  let n = max 1 n in
  let t =
    { n;
      mutex = Mutex.create ();
      ready = Condition.create ();
      done_ = Condition.create ();
      tasks = Array.make n nothing;
      generation = 0;
      pending = 0;
      stop = false;
      busy = false;
      idle_s = Array.make n 0.;
      ext_idle_s = Array.make n 0.;
      steal_wait_s = Array.make n 0.;
      async_failures = Array.make n None;
      clock;
      owner = Domain.self ();
      workers = [||];
    }
  in
  t.workers <-
    Array.init (n - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let shutdown t =
  if t.workers <> [||] then begin
    Mutex.lock t.mutex;
    if not t.stop then begin
      t.stop <- true;
      Condition.broadcast t.ready
    end;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
  end

let idle_time t = Array.fold_left ( +. ) 0. t.idle_s
let idle_times t = Array.copy t.idle_s

(* Charged accounting for long-running submitted jobs.  The park-time
   counters above only see time spent on the condition variable between
   barrier steps; a submit-mode job that spins looking for work never
   parks, so the job itself charges its empty-handed time here.  Each
   slot's cells are written only by the domain running that slot's job,
   so plain float adds are safe; readers look after [drain]. *)
let charge_idle t ~slot s = t.ext_idle_s.(slot) <- t.ext_idle_s.(slot) +. s
let charge_steal_wait t ~slot s =
  t.steal_wait_s.(slot) <- t.steal_wait_s.(slot) +. s

let charged_idle_times t =
  Array.init t.n (fun i -> t.idle_s.(i) +. t.ext_idle_s.(i))

let steal_wait_times t = Array.copy t.steal_wait_s

(* Inline fallback: pools are barrier-stepped from exactly one
   coordinating domain.  A step issued from anywhere else — a worker
   domain (nested use, e.g. data translation running inside a shard
   job), or the owner while a step is already in flight — degrades to
   plain sequential execution instead of deadlocking on the barrier. *)
let can_drive t = t.n > 1 && Domain.self () = t.owner && not t.busy

let step t f =
  if not (can_drive t) then Array.init t.n f
  else begin
    let results = Array.make t.n None in
    let failures = Array.make t.n None in
    let task i () =
      try results.(i) <- Some (f i)
      with e -> failures.(i) <- Some e
    in
    Mutex.lock t.mutex;
    t.busy <- true;
    t.tasks <- Array.init t.n (fun i -> task i);
    t.pending <- t.n - 1;
    t.generation <- t.generation + 1;
    Condition.broadcast t.ready;
    Mutex.unlock t.mutex;
    task 0 ();
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.done_ t.mutex
    done;
    t.busy <- false;
    Mutex.unlock t.mutex;
    Array.iteri
      (fun worker -> function
        | Some error -> raise (Worker_error { worker; error })
        | None -> ())
      failures;
    Array.map Option.get results
  end

let with_pool ?clock n f =
  let t = create ?clock n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Non-barrier mode: one long-running job per spawned worker, no
   completion wait on submission.  The caller keeps slot 0 for itself
   (typically a coordinator loop that consumes what the jobs publish)
   and joins the jobs with [drain].  When the pool cannot be driven —
   one slot, nested use, or a step already in flight — the jobs run
   synchronously on the caller before [submit] returns, so jobs that
   rendezvous with the submitting domain must only be submitted to a
   freshly created, self-owned pool. *)
let submit t f =
  let task i () =
    try f i with e -> t.async_failures.(i) <- Some e
  in
  if not (can_drive t) then
    for i = 1 to t.n - 1 do
      task i ()
    done
  else begin
    Mutex.lock t.mutex;
    t.busy <- true;
    t.tasks <- Array.init t.n (fun i -> if i = 0 then nothing else task i);
    t.pending <- t.n - 1;
    t.generation <- t.generation + 1;
    Condition.broadcast t.ready;
    Mutex.unlock t.mutex
  end

let quiescent t =
  if not t.busy then true
  else begin
    Mutex.lock t.mutex;
    let q = t.pending = 0 in
    Mutex.unlock t.mutex;
    q
  end

let drain t =
  if t.busy then begin
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.done_ t.mutex
    done;
    t.busy <- false;
    Mutex.unlock t.mutex
  end;
  Array.iteri
    (fun worker -> function
      | Some error ->
          t.async_failures.(worker) <- None;
          raise (Worker_error { worker; error })
      | None -> ())
    t.async_failures

let map_list ?max_workers t f xs =
  (* [max_workers] caps the number of slots that do work: on hosts
     with fewer cores than pool slots, striding CPU-bound work across
     every slot oversubscribes the machine and runs slower than
     sequential (BENCH_PR5 measured data translation at 0.31x with 8
     domains on one core).  Surplus slots return immediately. *)
  let m =
    match max_workers with None -> t.n | Some k -> max 1 (min k t.n)
  in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when m = 1 || not (can_drive t) -> List.map f xs
  | xs ->
      let arr = Array.of_list xs in
      let len = Array.length arr in
      let out = Array.make len None in
      (* strided static slices: element j belongs to worker (j mod m),
         so the split is independent of list contents and the output
         order is exactly the input order *)
      ignore
        (step t (fun w ->
             if w < m then begin
               let j = ref w in
               while !j < len do
                 out.(!j) <- Some (f arr.(!j));
                 j := !j + m
               done
             end));
      Array.to_list (Array.map Option.get out)
