(** A persistent pool of worker domains driven through a barrier-step
    protocol.

    [Domain.spawn] costs tens to hundreds of microseconds — paid per
    batch, it dominates any serving tick short enough to keep shadow
    verdicts flowing (the throughput collapse BENCH_PR4.json recorded
    as domains were added).  A pool spawns its workers once; between
    steps they park on a condition variable, and one step costs a
    broadcast plus a barrier wait.

    One domain — the one that called {!create} — is the {e
    coordinator}.  Only it can drive the barrier; a {!step} or
    {!map_list} issued from any other domain (nested use from inside a
    task) or re-entrantly while a step is in flight runs the work
    inline on the caller instead, so composing pooled code cannot
    deadlock, it only loses parallelism. *)

type t

(** Raised by {!step}/{!map_list} on the coordinator when a task
    raised; [worker] is the slot whose task failed (0 = the
    coordinator's own slice).  The barrier still completes first —
    other workers finish their tasks and return to their parking loop,
    so the pool remains usable. *)
exception Worker_error of { worker : int; error : exn }

(** [create n] spawns [n - 1] worker domains (clamped to at least one
    slot; [n = 1] is a degenerate pool that runs everything inline).
    [clock] (default [Unix.gettimeofday]) feeds the park-time
    accounting read back by {!idle_time}. *)
val create : ?clock:(unit -> float) -> int -> t

(** Worker slots, including the coordinator's slot 0. *)
val size : t -> int

(** [step t f] runs [f i] for every slot [i] in [0 .. size-1] — slot 0
    inline on the caller, the rest on the parked workers — and returns
    the results indexed by slot once all have finished.  The result is
    therefore deterministic in [f] regardless of scheduling. *)
val step : t -> (int -> 'a) -> 'a array

(** [map_list t f xs] = [List.map f xs], computed on the pool in
    strided static slices (element [j] on slot [j mod m], where [m] is
    the number of working slots).  Order and content of the result
    never depend on the pool size.  [max_workers] caps [m] below the
    pool size — use it to keep CPU-bound work from oversubscribing a
    host with fewer cores than pool slots; surplus slots return
    immediately. *)
val map_list : ?max_workers:int -> t -> ('a -> 'b) -> 'a list -> 'b list

(** {2 Non-barrier mode}

    [submit t f] starts [f i] on every spawned worker [i] in
    [1 .. size-1] and returns immediately; slot 0 stays with the
    caller, which typically runs a coordinator loop consuming what the
    jobs publish (see {!Ccv_common.Snapshot}).  There is no barrier:
    jobs run until they return, pacing themselves against whatever the
    coordinator publishes.  [drain t] then blocks until every job has
    returned and raises {!Worker_error} for the lowest-numbered worker
    whose job raised.

    Degenerate cases run the jobs synchronously on the caller before
    [submit] returns: a one-slot pool, a nested submit from inside a
    task, or a submit while a step is in flight.  Jobs that rendezvous
    with the submitting domain must therefore only be submitted to a
    freshly created, self-owned pool. *)

val submit : t -> (int -> unit) -> unit

(** Whether every submitted job has returned (vacuously true when
    nothing is in flight).  Lets the coordinator distinguish "workers
    still publishing" from "workers exited without publishing" —
    the latter means a job died and {!drain} will raise. *)
val quiescent : t -> bool

(** Join all submitted jobs; raises {!Worker_error} if any failed. *)
val drain : t -> unit

(** Total seconds workers have spent parked between steps (excludes
    the coordinator).  A serving loop whose workers idle most of the
    wall clock is starved for work per tick, not for domains. *)
val idle_time : t -> float

(** Per-slot park seconds (slot 0, the coordinator, is always 0) —
    the skew between slots is the load-imbalance signal the bench
    reports per worker. *)
val idle_times : t -> float array

(** {2 Charged accounting}

    Park time only measures waits on the barrier condition variable.  A
    submit-mode job that loops hunting for work never parks, so it
    reports its own empty-handed time through these: [charge_idle] for
    time with genuinely nothing to run anywhere, [charge_steal_wait]
    for time spent probing other slots' queues before work was found.
    Each slot must only be charged by the domain running that slot's
    job; read the totals after {!drain}. *)

val charge_idle : t -> slot:int -> float -> unit
val charge_steal_wait : t -> slot:int -> float -> unit

(** Per-slot park seconds plus charged idle — the true "had nothing to
    do" figure for submit-mode jobs ({!idle_times} stays park-only). *)
val charged_idle_times : t -> float array

(** Per-slot charged steal-probe seconds. *)
val steal_wait_times : t -> float array

(** Stop and join every worker.  Idempotent; the pool must not be
    stepped afterwards. *)
val shutdown : t -> unit

(** [with_pool n f] = [f (create n)] with a guaranteed {!shutdown},
    also on exceptions. *)
val with_pool : ?clock:(unit -> float) -> int -> (t -> 'a) -> 'a
