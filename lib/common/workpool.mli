(** A persistent pool of worker domains driven through a barrier-step
    protocol.

    [Domain.spawn] costs tens to hundreds of microseconds — paid per
    batch, it dominates any serving tick short enough to keep shadow
    verdicts flowing (the throughput collapse BENCH_PR4.json recorded
    as domains were added).  A pool spawns its workers once; between
    steps they park on a condition variable, and one step costs a
    broadcast plus a barrier wait.

    One domain — the one that called {!create} — is the {e
    coordinator}.  Only it can drive the barrier; a {!step} or
    {!map_list} issued from any other domain (nested use from inside a
    task) or re-entrantly while a step is in flight runs the work
    inline on the caller instead, so composing pooled code cannot
    deadlock, it only loses parallelism. *)

type t

(** Raised by {!step}/{!map_list} on the coordinator when a task
    raised; [worker] is the slot whose task failed (0 = the
    coordinator's own slice).  The barrier still completes first —
    other workers finish their tasks and return to their parking loop,
    so the pool remains usable. *)
exception Worker_error of { worker : int; error : exn }

(** [create n] spawns [n - 1] worker domains (clamped to at least one
    slot; [n = 1] is a degenerate pool that runs everything inline).
    [clock] (default [Unix.gettimeofday]) feeds the park-time
    accounting read back by {!idle_time}. *)
val create : ?clock:(unit -> float) -> int -> t

(** Worker slots, including the coordinator's slot 0. *)
val size : t -> int

(** [step t f] runs [f i] for every slot [i] in [0 .. size-1] — slot 0
    inline on the caller, the rest on the parked workers — and returns
    the results indexed by slot once all have finished.  The result is
    therefore deterministic in [f] regardless of scheduling. *)
val step : t -> (int -> 'a) -> 'a array

(** [map_list t f xs] = [List.map f xs], computed on the pool in
    strided static slices (element [j] on slot [j mod size]).  Order
    and content of the result never depend on the pool size. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** Total seconds workers have spent parked between steps (excludes
    the coordinator).  A serving loop whose workers idle most of the
    wall clock is starved for work per tick, not for domains. *)
val idle_time : t -> float

(** Stop and join every worker.  Idempotent; the pool must not be
    stepped afterwards. *)
val shutdown : t -> unit

(** [with_pool n f] = [f (create n)] with a guaranteed {!shutdown},
    also on exceptions. *)
val with_pool : ?clock:(unit -> float) -> int -> (t -> 'a) -> 'a
