(* Structured diagnostics for the conversion pipeline and the static
   analyzer.  Every refusal, lint, and inferred fact carries a stable
   code so tooling can dedupe, gate, and trend them; the [message] is
   the human-readable rendering the old [Refuse of string] payloads
   carried, so existing string-typed callers lose nothing.

   Code ranges (documented in DESIGN.md §13):
     CV0xx  conversion refusals raised by lib/convert/rules.ml
     AD0xx  admission-time refusals (navigation depth vs. demand cap)
     LN0xx  lints (non-fatal unless escalated)
     FA0xx  inferred program facts (constraint-inference pass)        *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  entity : string option;  (* offending entity or association, if any *)
  field : string option;   (* offending field, if any *)
  path : string option;    (* rendered access path, if any *)
  message : string;
}

let v ~code ~severity ?entity ?field ?path message =
  { code; severity; entity; field; path; message }

let errf ~code ?entity ?field ?path fmt =
  Fmt.kstr (fun message -> v ~code ~severity:Error ?entity ?field ?path message) fmt

let warnf ~code ?entity ?field ?path fmt =
  Fmt.kstr (fun message -> v ~code ~severity:Warning ?entity ?field ?path message) fmt

let inferf ~code ?entity ?field ?path fmt =
  Fmt.kstr (fun message -> v ~code ~severity:Info ?entity ?field ?path message) fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Keep [to_string] equal to the raw message: pre-existing callers
   (and tests) match on words of the old refusal strings. *)
let to_string d = d.message

let pp ppf d =
  Fmt.pf ppf "[%s] %s: %s" d.code (severity_label d.severity) d.message

let to_verbose_string d = Fmt.str "%a" pp d

(* Hand-rolled JSON (the repo deliberately carries no JSON dependency;
   see bench/main.ml for the same idiom). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let opt k = function
    | None -> ""
    | Some v -> Printf.sprintf ",\"%s\":\"%s\"" k (json_escape v)
  in
  Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\"%s%s%s,\"message\":\"%s\"}"
    (json_escape d.code)
    (severity_label d.severity)
    (opt "entity" d.entity) (opt "field" d.field) (opt "path" d.path)
    (json_escape d.message)

(* Dedupe a diagnostic stream by stable code, preserving first-seen
   order; used by E2 refusal reporting and the analyze CLI. *)
let count_codes ds =
  List.fold_left
    (fun acc d ->
      match List.assoc_opt d.code acc with
      | Some _ ->
          List.map (fun (c, n) -> if c = d.code then (c, n + 1) else (c, n)) acc
      | None -> acc @ [ (d.code, 1) ])
    [] ds
