(** Logical epoch keys and the reorder buffer that restores a
    deterministic total order over per-shard epoch publications.

    Barrier-free serving lets every shard run ahead at its own pace and
    publish immutable per-epoch snapshots whenever it finishes them —
    so the physical arrival order of snapshots depends on scheduling.
    Determinism is recovered logically: every event carries a
    [(epoch, shard, seq)] key, and the consumer releases publications
    in the total order of those keys, which depends only on the request
    stream and the shard count, never on domains or timing.

    The {!t} buffer implements exactly that release discipline: shards
    declare up front how many epoch rows they will publish, arbitrary
    interleavings of {!publish} go in, and {!pop_row} hands back
    complete epoch rows — epoch 0 of every shard (shard order), then
    epoch 1, and so on.  Feeding any interleaving of the same
    publications yields the same sequence of rows; the qcheck property
    suite checks this against sequential execution. *)

(** Total order of serving events: epoch first, then shard, then the
    event's sequence number within its shard's epoch. *)
type key = { epoch : int; shard : int; seq : int }

val compare_key : key -> key -> int
val pp_key : Format.formatter -> key -> unit

(** Reorder buffer over per-shard epoch publications. *)
type 'a t

(** [create ?merge ~rows] — [rows.(s)] is the number of epoch rows
    shard [s] will publish.  A shard with fewer rows than the longest
    simply stops contributing to later rows.  [merge] combines split
    sub-row payloads for {!publish_sub}; buffers that never see split
    rows may omit it. *)
val create : ?merge:('a -> 'a -> 'a) -> rows:int array -> unit -> 'a t

(** Number of rows in the longest shard stream — the row index domain
    of {!pop_row}. *)
val total_rows : 'a t -> int

(** [publish t ~shard ~epoch v] — shard [shard]'s snapshot for epoch
    row [epoch].  Any arrival order is accepted; publishing the same
    cell twice or beyond the declared row count is a programming error
    ([Invalid_argument]). *)
val publish : 'a t -> shard:int -> epoch:int -> 'a -> unit

(** [publish_sub t ~shard ~epoch ~subseq ~nsub v] — fragment [subseq]
    (0-based) of a row that was split into [nsub] sub-rows.  Once all
    [nsub] fragments are in, they fold left-to-right in ascending
    [subseq] order through the buffer's [merge] and the result is
    published as the row's single cell — {!pop_row} never observes
    fragments, so splitting is invisible downstream and the canonical
    release order is unchanged.  [nsub = 1] is exactly {!publish}.
    [Invalid_argument] on out-of-range keys, double publication,
    inconsistent [nsub] across fragments of one row, or [nsub > 1] on a
    buffer created without [~merge]. *)
val publish_sub :
  'a t -> shard:int -> epoch:int -> subseq:int -> nsub:int -> 'a -> unit

(** Next complete epoch row in canonical order, as
    [(epoch, (shard, payload) list)] with payloads in ascending shard
    order; shards whose streams ended before this row are absent.
    [None] while the row is still missing a publication. *)
val pop_row : 'a t -> (int * (int * 'a) list) option

(** Rows fully released so far — the consumption frontier. *)
val frontier : 'a t -> int
