(* Global intern table.  Interning happens at plan-compile time, which
   is rare and may run from several domains at once (the serve pool
   compiles inside shard workers), so the table is mutex-protected;
   [name] reads an immutable cell once published and takes the lock
   only to stay racefree with a concurrent growth of the array. *)

type t = int

let mutex = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string array ref = ref (Array.make 256 "")
let next = ref 0

let intern raw =
  let s = Field.canon raw in
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt table s with
      | Some id -> id
      | None ->
          let id = !next in
          incr next;
          if id >= Array.length !names then begin
            let bigger = Array.make (2 * Array.length !names) "" in
            Array.blit !names 0 bigger 0 (Array.length !names);
            names := bigger
          end;
          !names.(id) <- s;
          Hashtbl.add table s id;
          id)

let name id =
  Mutex.protect mutex (fun () ->
      if id < 0 || id >= !next then invalid_arg "Symbol.name: unknown symbol"
      else !names.(id))

let count () = Mutex.protect mutex (fun () -> !next)

let equal = Int.equal
let compare = Int.compare
let pp ppf id = Fmt.string ppf (name id)
