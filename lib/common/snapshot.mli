(** Atomic publication cells — the MVCC-lite primitive of epoch
    serving.

    A {!t} is a single-writer publication slot: the writer installs a
    new immutable value with one atomic pointer swap, readers take the
    latest published value with one atomic load.  No mutex, no
    condition variable, no reader/writer coordination on the hot path;
    a reader never observes a partially built value because the value
    is fully constructed before the swap.

    A {!mailbox} is the multi-shot variant: a single producer posts a
    stream of values (lock-free CAS push), a single consumer drains
    everything posted so far with one atomic exchange.  The serving
    loop gives every shard one mailbox — workers post per-epoch
    snapshots as they finish them and never block on the consumer. *)

type 'a t

(** [cell v] — a publication slot initially holding [v]. *)
val cell : 'a -> 'a t

(** Latest published value, one atomic load. *)
val read : 'a t -> 'a

(** Install a new value with an atomic pointer swap. *)
val publish : 'a t -> 'a -> unit

(** Single-producer single-consumer stream of publications. *)
type 'a mailbox

val mailbox : unit -> 'a mailbox

(** Producer side: append one value (lock-free). *)
val post : 'a mailbox -> 'a -> unit

(** Consumer side: remove and return everything posted so far, oldest
    first.  Values are returned exactly once across calls. *)
val take_all : 'a mailbox -> 'a list
