(** Low-level access accounting.  Every engine charges its record
    touches here so that experiment E1 can compare the access cost of
    converted programs against the emulation and bridge baselines.

    Counters are domain-safe: the fields are [Atomic.t], so shard
    workers running on separate domains (see [Ccv_serve]) can charge a
    shared per-phase counter without races.  [snapshot] reads the two
    fields independently — it is not an atomic pair read. *)

type t

val create : unit -> t

val record_read : t -> unit
val record_write : t -> unit

(** Charge [n] reads at once (bulk scans). *)
val record_reads : t -> int -> unit

val reads : t -> int
val writes : t -> int
val total : t -> int
val reset : t -> unit

(** [diff after before] as (reads, writes) — [snapshot]-style use. *)
val snapshot : t -> int * int
