(** Low-level access accounting.  Every engine charges its record
    touches here so that experiment E1 can compare the access cost of
    converted programs against the emulation and bridge baselines.

    Counters are domain-safe: the fields are [Atomic.t], so shard
    workers running on separate domains (see [Ccv_serve]) can charge a
    shared per-phase counter without races.  [snapshot] reads the two
    fields independently — it is not an atomic pair read.

    Atomic increments from many domains contend on the counter's cache
    line, so hot loops should not charge shared counters per event.
    {!local} is the staging half of that bargain: a plain, unshared
    buffer each worker charges for the duration of a tick, folded into
    the shared counter once at the barrier with {!flush_local}.  The
    totals are the same as charging the shared counter directly (the
    property test in [test_common] pins this); only the number of
    atomic operations changes. *)

type t

val create : unit -> t

val record_read : t -> unit
val record_write : t -> unit

(** Charge [n] reads at once (bulk scans). *)
val record_reads : t -> int -> unit

(** Charge [n] writes at once (per-tick flushes, bulk loads). *)
val record_writes : t -> int -> unit

val reads : t -> int
val writes : t -> int
val total : t -> int
val reset : t -> unit

(** [diff after before] as (reads, writes) — [snapshot]-style use. *)
val snapshot : t -> int * int

(** {2 Single-writer staging buffers} *)

(** Plain mutable fields, no atomics — must only ever be written by
    one domain at a time. *)
type local

val local_create : unit -> local
val local_record_reads : local -> int -> unit
val local_record_write : local -> unit

(** Staged (reads, writes) not yet flushed. *)
val local_snapshot : local -> int * int

(** Fold the staged charges into the shared counter and zero the
    buffer.  Call on the buffer's owning domain, or after a barrier
    ordering the owner's writes before this read. *)
val flush_local : t -> local -> unit
