(** Boolean qualification expressions over a record and a host-variable
    environment.  This one expression language serves relational
    selection, CODASYL FIND qualification, DL/I segment search
    arguments and the Maryland FIND booleans, so that the converter can
    rewrite conditions uniformly. *)

type expr =
  | Const of Value.t
  | Field of string  (** field of the record under test *)
  | Var of string  (** host-program variable *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Concat of expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of cmp * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of expr
  | Is_not_null of expr

type env = string -> Value.t option
(** Host-variable lookup. *)

val no_env : env

exception Unbound of string
(** Raised by {!eval} on an unknown field or variable. *)

val eval_expr : env:env -> Row.t -> expr -> Value.t
val eval : env:env -> Row.t -> t -> bool

(** The comparison kernel [eval] uses (1979 three-valued logic: any
    comparison involving NULL is false except [Eq NULL NULL]), exposed
    so compiled predicates share exactly these semantics. *)
val apply_cmp : cmp -> Value.t -> Value.t -> bool

(** Structural traversals used by the analyzer and converter. *)

val fields_of_expr : expr -> string list
val fields : t -> string list
val vars : t -> string list

(** [map_fields f c] renames every [Field] reference. *)
val map_fields : (string -> string) -> t -> t

(** [fields_to_vars f c] turns every [Field x] into [Var (f x)] — used
    when a record qualification becomes a host test over fetched
    working-storage variables. *)
val fields_to_vars : (string -> string) -> t -> t

(** [subst_vars env c] folds known host variables into constants. *)
val subst_vars : env -> t -> t

(** [split_conjuncts c] flattens nested [And]s (never returns [True]
    inside the list; [True] yields []). *)
val split_conjuncts : t -> t list

val conj : t list -> t

(** Smart conjunction: drops [True] operands. *)
val cand : t -> t -> t

(** [eq_field_const name v] builds the common [FIELD = literal] shape. *)
val eq_field_const : string -> Value.t -> t

(** Detect the [FIELD = literal] shape (after var substitution). *)
val as_field_eq_const : t -> (string * Value.t) option

val equal : t -> t -> bool
val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
val show : t -> string
