type key = { epoch : int; shard : int; seq : int }

let compare_key a b =
  match Int.compare a.epoch b.epoch with
  | 0 -> (
      match Int.compare a.shard b.shard with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
  | c -> c

let pp_key ppf k =
  Format.fprintf ppf "(epoch %d, shard %d, seq %d)" k.epoch k.shard k.seq

(* One cell per (shard, row); rows are released strictly in order, so a
   plain matrix indexed by the static row counts is enough — no search,
   no sorting, O(1) per publish and O(shards) per pop. *)
type 'a t = {
  rows : int array;  (* declared row count per shard *)
  cells : 'a option array array;  (* cells.(shard).(row) *)
  total : int;
  mutable next : int;  (* first unreleased row *)
  merge : ('a -> 'a -> 'a) option;  (* sub-row fold, left = lower subseq *)
  subs : (int * int, 'a option array) Hashtbl.t;
      (* (shard, row) -> partial sub-row publications *)
}

let create ?merge ~rows () =
  { rows = Array.copy rows;
    cells = Array.map (fun n -> Array.make (max n 0) None) rows;
    total = Array.fold_left max 0 rows;
    next = 0;
    merge;
    subs = Hashtbl.create 16;
  }

let total_rows t = t.total
let frontier t = t.next

let publish t ~shard ~epoch v =
  if shard < 0 || shard >= Array.length t.rows then
    invalid_arg "Epoch.publish: shard out of range";
  if epoch < 0 || epoch >= t.rows.(shard) then
    invalid_arg "Epoch.publish: epoch beyond the shard's declared rows";
  if t.cells.(shard).(epoch) <> None then
    invalid_arg "Epoch.publish: cell already published";
  t.cells.(shard).(epoch) <- Some v

(* Sub-row publication: a split row arrives as [nsub] fragments keyed
   by [subseq]; once all are present they fold left-to-right (ascending
   subseq) through the buffer's [merge] and land as the row's single
   cell — {!pop_row} never sees fragments, so consumers are oblivious
   to splitting.  [nsub = 1] degenerates to {!publish}. *)
let publish_sub t ~shard ~epoch ~subseq ~nsub v =
  if nsub <= 0 then invalid_arg "Epoch.publish_sub: nsub must be positive";
  if subseq < 0 || subseq >= nsub then
    invalid_arg "Epoch.publish_sub: subseq out of range";
  if nsub = 1 then publish t ~shard ~epoch v
  else begin
    let merge =
      match t.merge with
      | Some m -> m
      | None -> invalid_arg "Epoch.publish_sub: buffer created without ~merge"
    in
    (* range/double-publish guards apply to the whole row up front *)
    if shard < 0 || shard >= Array.length t.rows then
      invalid_arg "Epoch.publish_sub: shard out of range";
    if epoch < 0 || epoch >= t.rows.(shard) then
      invalid_arg "Epoch.publish_sub: epoch beyond the shard's declared rows";
    if t.cells.(shard).(epoch) <> None then
      invalid_arg "Epoch.publish_sub: cell already published";
    let key = (shard, epoch) in
    let parts =
      match Hashtbl.find_opt t.subs key with
      | Some parts ->
          if Array.length parts <> nsub then
            invalid_arg "Epoch.publish_sub: inconsistent nsub for the row";
          parts
      | None ->
          let parts = Array.make nsub None in
          Hashtbl.replace t.subs key parts;
          parts
    in
    if parts.(subseq) <> None then
      invalid_arg "Epoch.publish_sub: sub-row already published";
    parts.(subseq) <- Some v;
    if Array.for_all (fun p -> p <> None) parts then begin
      Hashtbl.remove t.subs key;
      let merged =
        Array.fold_left
          (fun acc p ->
            match acc, p with
            | None, p -> p
            | Some a, Some b -> Some (merge a b)
            | Some _, None -> assert false)
          None parts
      in
      match merged with
      | Some m -> publish t ~shard ~epoch m
      | None -> assert false
    end
  end

let pop_row t =
  if t.next >= t.total then None
  else begin
    let r = t.next in
    let complete = ref true in
    Array.iteri
      (fun s n -> if r < n && t.cells.(s).(r) = None then complete := false)
      t.rows;
    if not !complete then None
    else begin
      let row = ref [] in
      for s = Array.length t.rows - 1 downto 0 do
        if r < t.rows.(s) then
          match t.cells.(s).(r) with
          | Some v ->
              row := (s, v) :: !row;
              t.cells.(s).(r) <- None (* release for GC *)
          | None -> assert false
      done;
      t.next <- r + 1;
      Some (r, !row)
    end
  end
