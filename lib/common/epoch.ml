type key = { epoch : int; shard : int; seq : int }

let compare_key a b =
  match Int.compare a.epoch b.epoch with
  | 0 -> (
      match Int.compare a.shard b.shard with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
  | c -> c

let pp_key ppf k =
  Format.fprintf ppf "(epoch %d, shard %d, seq %d)" k.epoch k.shard k.seq

(* One cell per (shard, row); rows are released strictly in order, so a
   plain matrix indexed by the static row counts is enough — no search,
   no sorting, O(1) per publish and O(shards) per pop. *)
type 'a t = {
  rows : int array;  (* declared row count per shard *)
  cells : 'a option array array;  (* cells.(shard).(row) *)
  total : int;
  mutable next : int;  (* first unreleased row *)
}

let create ~rows =
  { rows = Array.copy rows;
    cells = Array.map (fun n -> Array.make (max n 0) None) rows;
    total = Array.fold_left max 0 rows;
    next = 0;
  }

let total_rows t = t.total
let frontier t = t.next

let publish t ~shard ~epoch v =
  if shard < 0 || shard >= Array.length t.rows then
    invalid_arg "Epoch.publish: shard out of range";
  if epoch < 0 || epoch >= t.rows.(shard) then
    invalid_arg "Epoch.publish: epoch beyond the shard's declared rows";
  if t.cells.(shard).(epoch) <> None then
    invalid_arg "Epoch.publish: cell already published";
  t.cells.(shard).(epoch) <- Some v

let pop_row t =
  if t.next >= t.total then None
  else begin
    let r = t.next in
    let complete = ref true in
    Array.iteri
      (fun s n -> if r < n && t.cells.(s).(r) = None then complete := false)
      t.rows;
    if not !complete then None
    else begin
      let row = ref [] in
      for s = Array.length t.rows - 1 downto 0 do
        if r < t.rows.(s) then
          match t.cells.(s).(r) with
          | Some v ->
              row := (s, v) :: !row;
              t.cells.(s).(r) <- None (* release for GC *)
          | None -> assert false
      done;
      t.next <- r + 1;
      Some (r, !row)
    end
  end
