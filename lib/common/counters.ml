type t = { reads : int Atomic.t; writes : int Atomic.t }

let create () = { reads = Atomic.make 0; writes = Atomic.make 0 }
let record_read t = Atomic.incr t.reads
let record_write t = Atomic.incr t.writes
let record_reads t n = ignore (Atomic.fetch_and_add t.reads n)
let record_writes t n = ignore (Atomic.fetch_and_add t.writes n)
let reads t = Atomic.get t.reads
let writes t = Atomic.get t.writes
let total t = Atomic.get t.reads + Atomic.get t.writes

let reset t =
  Atomic.set t.reads 0;
  Atomic.set t.writes 0

let snapshot t = (Atomic.get t.reads, Atomic.get t.writes)

(* Single-writer staging buffer: plain fields, no atomics, so a worker
   domain charging per request touches no shared cache line until the
   flush.  Safe publication is the caller's job — flush either on the
   owning worker, or on the coordinator after a barrier that ordered
   the worker's writes before the coordinator's reads. *)
type local = { mutable lreads : int; mutable lwrites : int }

let local_create () = { lreads = 0; lwrites = 0 }
let local_record_reads l n = l.lreads <- l.lreads + n
let local_record_write l = l.lwrites <- l.lwrites + 1
let local_snapshot l = (l.lreads, l.lwrites)

let flush_local t l =
  if l.lreads > 0 then record_reads t l.lreads;
  if l.lwrites > 0 then record_writes t l.lwrites;
  l.lreads <- 0;
  l.lwrites <- 0
