type t = { reads : int Atomic.t; writes : int Atomic.t }

let create () = { reads = Atomic.make 0; writes = Atomic.make 0 }
let record_read t = Atomic.incr t.reads
let record_write t = Atomic.incr t.writes
let record_reads t n = ignore (Atomic.fetch_and_add t.reads n)
let reads t = Atomic.get t.reads
let writes t = Atomic.get t.writes
let total t = Atomic.get t.reads + Atomic.get t.writes

let reset t =
  Atomic.set t.reads 0;
  Atomic.set t.writes 0

let snapshot t = (Atomic.get t.reads, Atomic.get t.writes)
