(** Interned names: field and variable identifiers resolved once — at
    plan-compile time — to dense integer ids, so compiled plans compare
    and index names as machine integers instead of re-canonicalizing
    strings on every access.  Interning canonicalizes through
    {!Field.canon}, so ["emp-name"] and ["EMP-NAME"] intern to the same
    symbol.  The table is global, append-only and thread-safe. *)

type t = private int

(** [intern s] — the unique id of [Field.canon s]. *)
val intern : string -> t

(** The canonical spelling; raises [Invalid_argument] on an id that was
    never interned. *)
val name : t -> string

(** Number of symbols interned so far (monotone). *)
val count : unit -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
