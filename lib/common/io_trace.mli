(** The observable behaviour of a database program, as defined in
    section 1.1 of the paper: "except with respect to the database, a
    restructured program must preserve the input/output behavior of the
    original program".  An [Io_trace.t] records exactly that observable
    part — terminal and non-database file interactions — and two
    programs are judged equivalent iff their traces are equal. *)

type event =
  | Terminal_out of string
  | Terminal_in of string  (** value consumed from the terminal script *)
  | File_write of string * string  (** file name, line *)
  | File_read of string * string

type t = event list
(** In chronological order. *)

val equal_event : event -> event -> bool

(** Structural equality in a single walk over both traces,
    short-circuiting at the first mismatch. *)
val equal : t -> t -> bool

(** Number of events in the trace. *)
val length : t -> int

(** Total order on events (tag, then payload), so traces can be
    sorted and compared as multisets in O(n log n). *)
val compare_event : event -> event -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
val show : t -> string

(** First differing position and the two events there, for diagnostics
    ([None] when traces are equal). *)
val first_divergence : t -> t -> (int * event option * event option) option

(** Only the terminal lines, in order — handy in tests. *)
val terminal_lines : t -> string list

(** A mutable trace under construction (interpreters append). *)
module Builder : sig
  type trace = t
  type t

  val create : unit -> t
  val emit : t -> event -> unit
  val contents : t -> trace
end
