(** The PROGRAM GENERATOR half of the plan layer: lowers an abstract
    program to OCaml closures exactly once.  Statement dispatch,
    conjunct splitting, access-path choice, field canonicalization and
    index construction all happen at compile time; the run-time
    residue is closure application over an integer-slot register file.

    [run] mirrors {!Ccv_abstract.Ainterp.run} statement for statement
    and returns the same result record — the differential property
    suite holds the two to identical {!Ccv_common.Io_trace}s on every
    generator workload. *)

open Ccv_model
open Ccv_abstract

type t

(** [compile ?stats schema p] — one-time lowering.  The schema must be
    the one of every database later passed to {!run} (the plan bakes in
    access paths, entity layouts and register slots derived from it).
    With [?stats] every query plan is cost-chosen under the snapshot
    (see {!Plan.of_query}); without it the fixed heuristic applies. *)
val compile : ?stats:Stats.t -> Semantic.t -> Aprog.t -> t

(** One plan per query in the program, in source order. *)
val plans : t -> Plan.t list

val name : t -> string

(** Number of registers the compiled program addresses. *)
val slot_count : t -> int

(** Execute against a database instance.  Raises [Invalid_argument]
    when the database's schema differs from the one the program was
    compiled against (a stale plan must be recompiled, not run). *)
val run :
  ?input:string list -> ?max_steps:int -> Sdb.t -> t -> Ainterp.result
