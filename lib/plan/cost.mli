(** Primitive cardinality estimators for plan costing.

    All estimators degrade gracefully when the snapshot has no data
    for a name: nominal defaults keep every candidate priced the same,
    so the heuristic choice survives the absence of statistics. *)

open Ccv_common

val default_rows : float
val default_selectivity : float

(** Fixed cost charged per step execution. *)
val step_overhead : float

val entity_rows : Stats.t -> string -> float
val link_rows : Stats.t -> string -> float

(** [eq_rows stats ename fname value] is the expected row count of an
    equality probe; [value = Some v] uses the hot-bucket profile,
    [None] (operand only bound at run time) the average bucket. *)
val eq_rows : Stats.t -> string -> string -> Value.t option -> float

(** Fraction of the extent an equality conjunct keeps, in [0, 1]. *)
val eq_selectivity : Stats.t -> string -> string -> Value.t option -> float

(** Average link fanout per bound source record. *)
val link_fanout : Stats.t -> string -> source:string -> float
