(* Primitive cardinality estimators: price a candidate access path by
   the rows it is expected to touch, given a statistics snapshot.
   The Plan module composes these per step; keeping the estimators
   free of Plan types keeps the dependency one-directional. *)

(* Defaults when the snapshot carries nothing for a name: a nominal
   extent and the classic 1-in-10 equality selectivity.  These only
   matter for tie-breaking — with no statistics at all every candidate
   prices the same and the heuristic (first-eligible) choice wins. *)
let default_rows = 16.
let default_selectivity = 0.1

(* Fixed overhead charged per step execution, so a probe that matches
   nothing still costs something and deeper plans are never free. *)
let step_overhead = 1.

let entity_rows stats ename =
  match Stats.entity_count stats ename with
  | Some c -> float_of_int c
  | None -> default_rows

let link_rows stats aname =
  match Stats.link_count stats aname with
  | Some c -> float_of_int c
  | None -> default_rows

(* Expected rows returned by an equality probe on [ename.fname].
   [value = Some v] prices a constant operand exactly against the hot
   list (residual average otherwise); [None] (operand bound at run
   time) prices the average bucket. *)
let eq_rows stats ename fname value =
  let total = entity_rows stats ename in
  match Stats.field_stat stats ename fname with
  | Some fs when fs.Stats.distinct > 0 -> (
      let distinct = float_of_int fs.Stats.distinct in
      match value with
      | None -> total /. distinct
      | Some v -> (
          match
            List.find_opt
              (fun (hv, _) -> Ccv_common.Value.compare hv v = 0)
              fs.Stats.hot
          with
          | Some (_, n) -> float_of_int n
          | None ->
              let hot_sum =
                List.fold_left (fun a (_, n) -> a + n) 0 fs.Stats.hot
              in
              let residual_rows = Float.max 0. (total -. float_of_int hot_sum) in
              let residual_distinct =
                Float.max 1. (distinct -. float_of_int (List.length fs.Stats.hot))
              in
              residual_rows /. residual_distinct))
  | _ -> Float.max 1. (total *. default_selectivity)

(* Selectivity of an equality conjunct: fraction of the extent kept. *)
let eq_selectivity stats ename fname value =
  let total = Float.max 1. (entity_rows stats ename) in
  Float.min 1. (eq_rows stats ename fname value /. total)

(* Average fanout of a link traversal from a bound source: links
   divided by source extent.  At least the overhead of following the
   set — a keyed traversal never touches the whole association. *)
let link_fanout stats aname ~source =
  let links = link_rows stats aname in
  let sources = Float.max 1. (entity_rows stats source) in
  Float.max 1. (links /. sources)
