(** One-time lowering of concrete host programs ([Host.program]) to
    closures, parameterized over the executing engine.  The engine
    still interprets individual DML steps (it owns the currency/cursor
    state); the host-language statement tree, expressions and the
    variable environment are compiled away. *)

open Ccv_common
open Ccv_abstract

module Make (E : Host.ENGINE) : sig
  (** Field-for-field the result of [Host.Run(E).run]. *)
  type result = {
    db : E.db;
    trace : Io_trace.t;
    env : (string * Value.t) list;
    statuses : Status.t list;
    steps : int;
    hit_limit : bool;
  }

  type t

  val compile : E.dml Host.program -> t
  val run : ?input:string list -> ?max_steps:int -> E.db -> t -> result
end
