open Ccv_common
open Ccv_abstract

(* Host-program analogue of Compile: lower a ['dml Host.program] to
   closures once, so the serve layer's shadow runs stop re-walking the
   statement tree and the List.assoc environment per request.  DML
   steps still execute through the engine (which carries its own
   currency/cursor state); what is compiled away is the host-language
   interpretation around them. *)

module Make (E : Host.ENGINE) = struct
  type result = {
    db : E.db;
    trace : Io_trace.t;
    env : (string * Value.t) list;
    statuses : Status.t list;
    steps : int;
    hit_limit : bool;
  }

  exception Step_limit

  type rt = {
    mutable rdb : E.db;
    mutable rstate : E.state;
    renv : (string, Value.t) Hashtbl.t;
    mutable rstatuses : Status.t list;
    mutable rsteps : int;
    mutable rinput : string list;
    builder : Io_trace.Builder.t;
    max_steps : int;
  }

  type t = { name : string; entry : rt -> unit }

  let lookup rt name =
    Some (Option.value (Hashtbl.find_opt rt.renv name) ~default:Value.Null)

  let tick rt =
    rt.rsteps <- rt.rsteps + 1;
    if rt.rsteps > rt.max_steps then raise Step_limit

  let rec compile_expr (e : Cond.expr) : rt -> Value.t =
    match e with
    | Cond.Const v -> fun _ -> v
    | Cond.Field name ->
        (* statement-level evaluation runs against the empty row, as in
           Host.Run — a bare field reference is unbound *)
        fun _ -> raise (Cond.Unbound ("field " ^ name))
    | Cond.Var name ->
        fun rt ->
          Option.value (Hashtbl.find_opt rt.renv name) ~default:Value.Null
    | Cond.Add (a, b) ->
        let ca = compile_expr a and cb = compile_expr b in
        fun rt -> Value.add (ca rt) (cb rt)
    | Cond.Sub (a, b) ->
        let ca = compile_expr a and cb = compile_expr b in
        fun rt -> Value.sub (ca rt) (cb rt)
    | Cond.Mul (a, b) ->
        let ca = compile_expr a and cb = compile_expr b in
        fun rt -> Value.mul (ca rt) (cb rt)
    | Cond.Concat (a, b) ->
        let ca = compile_expr a and cb = compile_expr b in
        fun rt -> Value.concat (ca rt) (cb rt)

  let rec compile_cond (c : Cond.t) : rt -> bool =
    match c with
    | Cond.True -> fun _ -> true
    | Cond.Cmp (op, a, b) ->
        let ca = compile_expr a and cb = compile_expr b in
        fun rt -> Cond.apply_cmp op (ca rt) (cb rt)
    | Cond.And (a, b) ->
        let ca = compile_cond a and cb = compile_cond b in
        fun rt -> ca rt && cb rt
    | Cond.Or (a, b) ->
        let ca = compile_cond a and cb = compile_cond b in
        fun rt -> ca rt || cb rt
    | Cond.Not a ->
        let ca = compile_cond a in
        fun rt -> not (ca rt)
    | Cond.Is_null e ->
        let ce = compile_expr e in
        fun rt -> Value.is_null (ce rt)
    | Cond.Is_not_null e ->
        let ce = compile_expr e in
        fun rt -> not (Value.is_null (ce rt))

  let render ces rt =
    String.concat " " (List.map (fun ce -> Value.to_display (ce rt)) ces)

  let rec compile_stmt (s : E.dml Host.stmt) : rt -> unit =
    match s with
    | Host.Dml d ->
        fun rt ->
          tick rt;
          let db, state, updates, status =
            E.exec rt.rdb rt.rstate ~env:(lookup rt) d
          in
          rt.rdb <- db;
          rt.rstate <- state;
          List.iter (fun (n, v) -> Hashtbl.replace rt.renv n v) updates;
          Hashtbl.replace rt.renv Host.status_var
            (Value.Str (Status.code status));
          rt.rstatuses <- status :: rt.rstatuses
    | Host.Move (e, x) ->
        let ce = compile_expr e in
        fun rt ->
          tick rt;
          Hashtbl.replace rt.renv x (ce rt)
    | Host.Display es ->
        let ces = List.map compile_expr es in
        fun rt ->
          tick rt;
          Io_trace.Builder.emit rt.builder (Io_trace.Terminal_out (render ces rt))
    | Host.Accept x ->
        fun rt ->
          tick rt;
          let line, rest =
            match rt.rinput with [] -> ("", []) | l :: rest -> (l, rest)
          in
          rt.rinput <- rest;
          Io_trace.Builder.emit rt.builder (Io_trace.Terminal_in line);
          Hashtbl.replace rt.renv x (Value.Str line)
    | Host.Write_file (file, es) ->
        let ces = List.map compile_expr es in
        fun rt ->
          tick rt;
          Io_trace.Builder.emit rt.builder
            (Io_trace.File_write (file, render ces rt))
    | Host.If (c, a, b) ->
        let cc = compile_cond c in
        let ca = compile_body a in
        let cb = compile_body b in
        fun rt ->
          tick rt;
          if cc rt then ca rt else cb rt
    | Host.While (c, body) ->
        let cc = compile_cond c in
        let cb = compile_body body in
        fun rt ->
          tick rt;
          let rec loop () =
            if cc rt then begin
              cb rt;
              tick rt;
              loop ()
            end
          in
          loop ()

  and compile_body body =
    let fns = List.map compile_stmt body in
    fun rt -> List.iter (fun f -> f rt) fns

  let compile (p : E.dml Host.program) =
    { name = p.Host.name; entry = compile_body p.Host.body }

  let run ?(input = []) ?(max_steps = 200_000) db (c : t) =
    let renv = Hashtbl.create 64 in
    Hashtbl.replace renv Host.status_var (Value.Str "0000");
    let rt =
      { rdb = db;
        rstate = E.initial_state db;
        renv;
        rstatuses = [];
        rsteps = 0;
        rinput = input;
        builder = Io_trace.Builder.create ();
        max_steps;
      }
    in
    let hit_limit =
      try
        c.entry rt;
        false
      with Step_limit -> true
    in
    { db = rt.rdb;
      trace = Io_trace.Builder.contents rt.builder;
      env = Hashtbl.fold (fun n v acc -> (n, v) :: acc) rt.renv [];
      statuses = List.rev rt.rstatuses;
      steps = rt.rsteps;
      hit_limit;
    }
end
