open Ccv_common
open Ccv_model
open Ccv_abstract

(* The compiled form of an abstract program: every statement, query
   step, expression and condition lowered to an OCaml closure exactly
   once, with names resolved to integer register slots at compile time.
   Runtime behaviour mirrors Ainterp statement for statement — the
   differential suite in test/test_plan.ml holds the two to the same
   Io_trace — but none of the per-evaluation work the interpreter
   repeats (pattern dispatch, conjunct splitting, Field.canon,
   List.assoc environments, index building) survives to run time. *)

exception Step_limit

type cstate = {
  mutable db : Sdb.t;
  env : Value.t array;  (* registers, indexed by compile-time slot *)
  mutable steps : int;
  mutable input : string list;
  builder : Io_trace.Builder.t;
  max_steps : int;
}

type t = {
  program_name : string;
  schema : Semantic.t;
  plans : Plan.t list;
  indexes : (string * string) list;
  slots : (string, int) Hashtbl.t;
  slot_names : string array;
  status_slot : int;
  nslots : int;
  entry : cstate -> unit;
}

(* ------------------------------------------------------------------ *)
(* Compile-time state: the slot table grows as names are discovered.   *)

type ctab = {
  cschema : Semantic.t;
  cstats : Stats.t option;  (** snapshot the plans are costed under *)
  ctslots : (string, int) Hashtbl.t;
  mutable ctnslots : int;
  mutable ctnames_rev : string list;
  mutable ctplans_rev : Plan.t list;
  mutable ctindexes_rev : (string * string) list;
}

let slot_of tb name =
  match Hashtbl.find_opt tb.ctslots name with
  | Some i -> i
  | None ->
      let i = tb.ctnslots in
      tb.ctnslots <- i + 1;
      Hashtbl.add tb.ctslots name i;
      tb.ctnames_rev <- name :: tb.ctnames_rev;
      i

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then raise Step_limit

(* ------------------------------------------------------------------ *)
(* Expressions and conditions compile to closures over the runtime
   state and the candidate row's bindings (canonical names; [] at
   statement level, where the interpreter evaluates against
   Row.empty).  Field names are canonicalized here, once.             *)

let rec compile_expr tb (e : Cond.expr) : cstate -> (string * Value.t) list -> Value.t =
  match e with
  | Cond.Const v -> fun _ _ -> v
  | Cond.Field name ->
      let cname = Field.canon name in
      fun _ row -> (
        match List.assoc_opt cname row with
        | Some v -> v
        | None -> raise (Cond.Unbound ("field " ^ name)))
  | Cond.Var name ->
      let i = slot_of tb name in
      fun st _ -> st.env.(i)
  | Cond.Add (a, b) ->
      let ca = compile_expr tb a and cb = compile_expr tb b in
      fun st row -> Value.add (ca st row) (cb st row)
  | Cond.Sub (a, b) ->
      let ca = compile_expr tb a and cb = compile_expr tb b in
      fun st row -> Value.sub (ca st row) (cb st row)
  | Cond.Mul (a, b) ->
      let ca = compile_expr tb a and cb = compile_expr tb b in
      fun st row -> Value.mul (ca st row) (cb st row)
  | Cond.Concat (a, b) ->
      let ca = compile_expr tb a and cb = compile_expr tb b in
      fun st row -> Value.concat (ca st row) (cb st row)

let rec compile_cond tb (c : Cond.t) : cstate -> (string * Value.t) list -> bool =
  match c with
  | Cond.True -> fun _ _ -> true
  | Cond.Cmp (op, a, b) ->
      let ca = compile_expr tb a and cb = compile_expr tb b in
      fun st row -> Cond.apply_cmp op (ca st row) (cb st row)
  | Cond.And (a, b) ->
      let ca = compile_cond tb a and cb = compile_cond tb b in
      fun st row -> ca st row && cb st row
  | Cond.Or (a, b) ->
      let ca = compile_cond tb a and cb = compile_cond tb b in
      fun st row -> ca st row || cb st row
  | Cond.Not a ->
      let ca = compile_cond tb a in
      fun st row -> not (ca st row)
  | Cond.Is_null e ->
      let ce = compile_expr tb e in
      fun st row -> Value.is_null (ce st row)
  | Cond.Is_not_null e ->
      let ce = compile_expr tb e in
      fun st row -> not (Value.is_null (ce st row))

(* Conjunction of pre-split conjuncts, short-circuiting in order. *)
let compile_conjuncts tb cs =
  let fns = List.map (compile_cond tb) cs in
  fun st row -> List.for_all (fun f -> f st row) fns

(* A context binding resolved at run time: the named field of an
   earlier step's target, from the context row or — for queries nested
   under an enclosing FOR EACH — from the register the outer loop
   bound.  The qualified name and its slot are fixed here. *)
let compile_ctx_value tb name field =
  let qname = Field.canon name ^ "." ^ Field.canon field in
  let i = slot_of tb qname in
  fun st ctx ->
    match List.assoc_opt qname ctx with Some v -> v | None -> st.env.(i)

(* Per-step row qualifier: prefixes field names with the canonical
   target name, memoized so each distinct raw field name is rendered
   once per compiled step rather than once per row per evaluation. *)
let make_qualifier target =
  let prefix = Field.canon target ^ "." in
  let memo : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let qname f =
    match Hashtbl.find_opt memo f with
    | Some q -> q
    | None ->
        let q = prefix ^ f in
        Hashtbl.add memo f q;
        q
  in
  fun r -> Row.of_list (List.map (fun (f, v) -> (qname f, v)) (Row.to_list r))

(* Reserve registers for every qualified name a step's target can bind,
   so bind_ctx finds a slot for each binding it must publish. *)
let reserve_entity_slots tb name (e : Semantic.entity) =
  List.iter
    (fun (f : Field.t) -> ignore (slot_of tb (Field.canon name ^ "." ^ Field.canon f.name)))
    e.fields

let reserve_assoc_slots tb (a : Semantic.assoc) =
  let prefix k = Field.canon a.aname ^ "." ^ Field.canon k in
  (match Semantic.find_entity tb.cschema a.left with
  | Some le -> List.iter (fun k -> ignore (slot_of tb (prefix k))) le.key
  | None -> ());
  (match Semantic.find_entity tb.cschema a.right with
  | Some re -> List.iter (fun k -> ignore (slot_of tb (prefix k))) re.key
  | None -> ());
  List.iter (fun (f : Field.t) -> ignore (slot_of tb (prefix f.name))) a.fields

(* ------------------------------------------------------------------ *)
(* Query steps: one closure each, [cstate -> Row.t list -> Row.t list],
   mirroring Apattern.eval's extend.                                   *)

let compile_step tb (ps : Plan.step) : cstate -> Row.t list -> Row.t list =
  let schema = tb.cschema in
  match ps.Plan.pattern with
  | Apattern.Self { target; qual = _ } ->
      (match Semantic.find_entity schema target with
      | Some e -> reserve_entity_slots tb target e
      | None -> ());
      let cq = compile_conjuncts tb ps.Plan.conjuncts in
      let qualify = make_qualifier target in
      let probe =
        match ps.Plan.access with
        | Plan.Indexed_probe { field; operand } ->
            let fname = Symbol.name field in
            let get =
              match operand with
              | Plan.Oconst v -> fun _ -> v
              | Plan.Ovar x ->
                  let i = slot_of tb x in
                  fun st -> st.env.(i)
            in
            Some (fname, get)
        | Plan.Link_traverse _ | Plan.Assoc_scan _ | Plan.Key_lookup
        | Plan.Extent_scan -> None
      in
      fun st ctxs ->
        let pool =
          match probe with
          | Some (fname, get) -> (
              match Sdb.rows_eq st.db target fname (get st) with
              | Some rows -> rows
              | None -> Sdb.rows st.db target)
          | None -> Sdb.rows st.db target
        in
        let qrows =
          List.filter_map
            (fun r -> if cq st (Row.to_list r) then Some (qualify r) else None)
            pool
        in
        List.concat_map
          (fun ctx -> List.map (fun qr -> Row.union ctx qr) qrows)
          ctxs
  | Apattern.Through { target; source; link = tf, sf; qual = _ } ->
      (match Semantic.find_entity schema target with
      | Some e -> reserve_entity_slots tb target e
      | None -> ());
      let cq = compile_conjuncts tb ps.Plan.conjuncts in
      let qualify = make_qualifier target in
      let cv = compile_ctx_value tb source sf in
      let ctf = Field.canon tf in
      fun st ctxs ->
        List.concat_map
          (fun ctx ->
            let cb = Row.to_list ctx in
            let wanted = cv st cb in
            let pool =
              match Sdb.rows_eq st.db target tf wanted with
              | Some rows -> rows
              | None -> Sdb.rows st.db target
            in
            List.filter_map
              (fun r ->
                let rb = Row.to_list r in
                if
                  (match List.assoc_opt ctf rb with
                  | Some v -> Value.equal v wanted
                  | None -> false)
                  && cq st rb
                then Some (Row.union ctx (qualify r))
                else None)
              pool)
          ctxs
  | Apattern.Assoc_via { assoc; source; qual = _ } ->
      let a = Semantic.find_assoc_exn schema assoc in
      reserve_assoc_slots tb a;
      let source_is_left = Field.name_equal a.left source in
      let src_entity =
        Semantic.find_entity_exn schema (if source_is_left then a.left else a.right)
      in
      let cvs =
        List.map (fun k -> compile_ctx_value tb source k) src_entity.key
      in
      let cq = compile_conjuncts tb ps.Plan.conjuncts in
      let qualify = make_qualifier assoc in
      fun st ctxs ->
        List.concat_map
          (fun ctx ->
            let cb = Row.to_list ctx in
            let src_key = List.map (fun cv -> cv st cb) cvs in
            Sdb.links st.db assoc
            |> List.filter (fun (l : Sdb.link) ->
                   let side = if source_is_left then l.lkey else l.rkey in
                   List.compare Value.compare side src_key = 0)
            |> List.filter_map (fun l ->
                   let lrow = Sdb.link_row schema a l in
                   if cq st (Row.to_list lrow) then
                     Some (Row.union ctx (qualify lrow))
                   else None))
          ctxs
  | Apattern.Via_assoc { target; assoc; qual = _ } ->
      let a = Semantic.find_assoc_exn schema assoc in
      let target_is_left = Field.name_equal a.left target in
      let tgt_entity =
        Semantic.find_entity_exn schema (if target_is_left then a.left else a.right)
      in
      reserve_entity_slots tb target tgt_entity;
      let cvs =
        List.map (fun k -> compile_ctx_value tb assoc k) tgt_entity.key
      in
      let cq = compile_conjuncts tb ps.Plan.conjuncts in
      let qualify = make_qualifier target in
      fun st ctxs ->
        List.concat_map
          (fun ctx ->
            let cb = Row.to_list ctx in
            let key = List.map (fun cv -> cv st cb) cvs in
            match Sdb.find_entity st.db tgt_entity.ename key with
            | Some r when cq st (Row.to_list r) ->
                [ Row.union ctx (qualify r) ]
            | Some _ | None -> [])
          ctxs

let compile_query tb (q : Apattern.t) : cstate -> Row.t list =
  let plan = Plan.of_query ?stats:tb.cstats tb.cschema q in
  tb.ctplans_rev <- plan :: tb.ctplans_rev;
  tb.ctindexes_rev <-
    List.rev_append (Plan.required_indexes plan) tb.ctindexes_rev;
  let step_fns = List.map (compile_step tb) plan.Plan.steps in
  fun st -> List.fold_left (fun ctxs f -> f st ctxs) [ Row.empty ] step_fns

(* ------------------------------------------------------------------ *)
(* Statements.                                                        *)

let compile_program tb (p : Aprog.t) : cstate -> unit =
  let schema = tb.cschema in
  let status_slot = slot_of tb Host.status_var in
  let set_status st status =
    st.env.(status_slot) <- Value.Str (Status.code status)
  in
  (* Publish a context's bindings into the registers, as the
     interpreter's bind_context does.  A binding with no slot was never
     allocated one precisely because no compiled site reads it. *)
  let slots = tb.ctslots in
  let bind_ctx st ctx =
    List.iter
      (fun (n, v) ->
        match Hashtbl.find_opt slots n with
        | Some i -> st.env.(i) <- v
        | None -> ())
      (Row.to_list ctx)
  in
  let eval0 ce st = ce st [] in
  let render ces st =
    String.concat " " (List.map (fun ce -> Value.to_display (eval0 ce st)) ces)
  in
  (* Key of the instance a context holds for a given entity. *)
  let ctx_keys (e : Semantic.entity) =
    List.map (fun k -> Field.canon (e.ename ^ "." ^ k)) e.key
  in
  let pick_key qnames cb =
    List.map
      (fun qn -> Option.value (List.assoc_opt qn cb) ~default:Value.Null)
      qnames
  in
  let rec compile_stmt (s : Aprog.astmt) : cstate -> unit =
    match s with
    | Aprog.For_each { query; body } ->
        let qf = compile_query tb query in
        let bf = compile_body body in
        fun st ->
          tick st;
          let ctxs = qf st in
          List.iter
            (fun ctx ->
              bind_ctx st ctx;
              bf st)
            ctxs;
          set_status st Status.Ok
    | Aprog.First { query; present; absent } -> (
        let qf = compile_query tb query in
        let pf = compile_body present in
        let af = compile_body absent in
        fun st ->
          tick st;
          match qf st with
          | ctx :: _ ->
              bind_ctx st ctx;
              set_status st Status.Ok;
              pf st
          | [] ->
              set_status st Status.Not_found;
              af st)
    | Aprog.Insert { entity; values; connects } ->
        let e = Semantic.find_entity_exn schema entity in
        let cvalues =
          List.map (fun (f, ex) -> (f, compile_expr tb ex)) values
        in
        let cconnects =
          List.map
            (fun (assoc, kexprs) ->
              (assoc, List.map (compile_expr tb) kexprs))
            connects
        in
        fun st ->
          tick st;
          let row =
            Row.of_list (List.map (fun (f, ce) -> (f, eval0 ce st)) cvalues)
          in
          let right = Sdb.key_of e row in
          (* atomic insert-and-connect, as in the interpreter *)
          (match Sdb.insert_entity st.db entity row with
          | Error s -> set_status st s
          | Ok db ->
              let rec go db = function
                | [] ->
                    st.db <- db;
                    set_status st Status.Ok
                | (assoc, kces) :: rest -> (
                    let left = List.map (fun ce -> eval0 ce st) kces in
                    match Sdb.link db assoc ~left ~right with
                    | Ok db -> go db rest
                    | Error s -> set_status st s)
              in
              go db cconnects)
    | Aprog.Link { assoc; left_key; right_key; attrs } ->
        let cl = List.map (compile_expr tb) left_key in
        let cr = List.map (compile_expr tb) right_key in
        let cattrs =
          List.map (fun (f, ex) -> (f, compile_expr tb ex)) attrs
        in
        fun st ->
          tick st;
          let left = List.map (fun ce -> eval0 ce st) cl in
          let right = List.map (fun ce -> eval0 ce st) cr in
          let attrs =
            Row.of_list (List.map (fun (f, ce) -> (f, eval0 ce st)) cattrs)
          in
          (match Sdb.link ~attrs st.db assoc ~left ~right with
          | Ok db ->
              st.db <- db;
              set_status st Status.Ok
          | Error s -> set_status st s)
    | Aprog.Unlink { assoc; left_key; right_key } ->
        let cl = List.map (compile_expr tb) left_key in
        let cr = List.map (compile_expr tb) right_key in
        let disconnect = left_key = [] in
        fun st ->
          tick st;
          let right = List.map (fun ce -> eval0 ce st) cr in
          let left =
            if disconnect then
              (* DISCONNECT semantics: find the partner *)
              let found =
                List.find_opt
                  (fun (l : Sdb.link) ->
                    List.compare Value.compare l.rkey right = 0)
                  (Sdb.links_silent st.db assoc)
              in
              match found with Some l -> l.lkey | None -> [ Value.Null ]
            else List.map (fun ce -> eval0 ce st) cl
          in
          (match Sdb.unlink st.db assoc ~left ~right with
          | Ok db ->
              st.db <- db;
              set_status st Status.Ok
          | Error s -> set_status st s)
    | Aprog.Update { query; assigns } ->
        let qf = compile_query tb query in
        let target = Apattern.result_of query in
        let e = Semantic.find_entity_exn schema target in
        let qkeys = ctx_keys e in
        let cassigns =
          List.map (fun (f, ex) -> (f, compile_expr tb ex)) assigns
        in
        fun st ->
          tick st;
          let ctxs = qf st in
          let status = ref Status.Ok in
          List.iter
            (fun ctx ->
              bind_ctx st ctx;
              let key = pick_key qkeys (Row.to_list ctx) in
              let values =
                List.map (fun (f, ce) -> (f, eval0 ce st)) cassigns
              in
              match Sdb.update_entity st.db target key values with
              | Ok db -> st.db <- db
              | Error s -> status := s)
            ctxs;
          set_status st !status
    | Aprog.Delete { query; cascade } -> (
        let qf = compile_query tb query in
        let target = Apattern.result_of query in
        (* entity targets are deleted; association targets unlinked —
           decided here, once *)
        match Semantic.find_assoc schema target with
        | Some a ->
            let le = Semantic.find_entity_exn schema a.left in
            let re = Semantic.find_entity_exn schema a.right in
            let lkeys = List.map (fun k -> Field.canon (target ^ "." ^ k)) le.key in
            let rkeys = List.map (fun k -> Field.canon (target ^ "." ^ k)) re.key in
            fun st ->
              tick st;
              let ctxs = qf st in
              let status = ref Status.Ok in
              List.iter
                (fun ctx ->
                  let cb = Row.to_list ctx in
                  match
                    Sdb.unlink st.db target ~left:(pick_key lkeys cb)
                      ~right:(pick_key rkeys cb)
                  with
                  | Ok db -> st.db <- db
                  | Error Status.Not_found -> ()
                  | Error s -> status := s)
                ctxs;
              set_status st !status
        | None ->
            let e = Semantic.find_entity_exn schema target in
            let qkeys = ctx_keys e in
            fun st ->
              tick st;
              let ctxs = qf st in
              let status = ref Status.Ok in
              List.iter
                (fun ctx ->
                  let key = pick_key qkeys (Row.to_list ctx) in
                  match Sdb.delete_entity st.db target key ~cascade with
                  | Ok db -> st.db <- db
                  | Error Status.Not_found -> ()
                  | Error s -> status := s)
                ctxs;
              set_status st !status)
    | Aprog.Display es ->
        let ces = List.map (compile_expr tb) es in
        fun st ->
          tick st;
          Io_trace.Builder.emit st.builder (Io_trace.Terminal_out (render ces st))
    | Aprog.Accept x ->
        let i = slot_of tb x in
        fun st ->
          tick st;
          let line, rest =
            match st.input with [] -> ("", []) | l :: rest -> (l, rest)
          in
          st.input <- rest;
          Io_trace.Builder.emit st.builder (Io_trace.Terminal_in line);
          st.env.(i) <- Value.Str line
    | Aprog.Write_file (file, es) ->
        let ces = List.map (compile_expr tb) es in
        fun st ->
          tick st;
          Io_trace.Builder.emit st.builder
            (Io_trace.File_write (file, render ces st))
    | Aprog.Move (e, x) ->
        let ce = compile_expr tb e in
        let i = slot_of tb x in
        fun st ->
          tick st;
          st.env.(i) <- eval0 ce st
    | Aprog.If (c, a, b) ->
        let cc = compile_cond tb c in
        let ca = compile_body a in
        let cb = compile_body b in
        fun st ->
          tick st;
          if cc st [] then ca st else cb st
    | Aprog.While (c, body) ->
        let cc = compile_cond tb c in
        let cb = compile_body body in
        fun st ->
          tick st;
          let rec loop () =
            if cc st [] then begin
              cb st;
              tick st;
              loop ()
            end
          in
          loop ()
  and compile_body body =
    let fns = List.map compile_stmt body in
    fun st -> List.iter (fun f -> f st) fns
  in
  compile_body p.body

let compile ?stats schema (p : Aprog.t) =
  let tb =
    { cschema = schema;
      cstats = stats;
      ctslots = Hashtbl.create 64;
      ctnslots = 0;
      ctnames_rev = [];
      ctplans_rev = [];
      ctindexes_rev = [];
    }
  in
  let entry = compile_program tb p in
  let status_slot = Hashtbl.find tb.ctslots Host.status_var in
  { program_name = p.name;
    schema;
    plans = List.rev tb.ctplans_rev;
    indexes = List.rev tb.ctindexes_rev;
    slots = tb.ctslots;
    slot_names = Array.of_list (List.rev tb.ctnames_rev);
    status_slot;
    nslots = tb.ctnslots;
    entry;
  }

let plans t = t.plans
let name t = t.program_name
let slot_count t = t.nslots

let run ?(input = []) ?(max_steps = 200_000) db (c : t) =
  (* physical equality first: in steady-state serving the database
     carries the very schema value the plan was compiled against, and
     the structural walk would cost more than a small compiled query *)
  let dschema = Sdb.schema db in
  if not (dschema == c.schema || Semantic.equal dschema c.schema) then
    invalid_arg "Compile.run: database schema differs from the plan's";
  let st =
    { db;
      env = Array.make (max c.nslots 1) Value.Null;
      steps = 0;
      input;
      builder = Io_trace.Builder.create ();
      max_steps;
    }
  in
  st.env.(c.status_slot) <- Value.Str "0000";
  (* index hoisting: everything ensure_query_indexes would build
     per evaluation, built once up front *)
  st.db <-
    List.fold_left (fun db (e, f) -> Sdb.ensure_index db e f) st.db c.indexes;
  let hit_limit =
    try
      c.entry st;
      false
    with Step_limit -> true
  in
  { Ainterp.db = st.db;
    trace = Io_trace.Builder.contents st.builder;
    env =
      Array.to_list (Array.mapi (fun i v -> (c.slot_names.(i), v)) st.env);
    steps = st.steps;
    hit_limit;
  }
