open Ccv_model

(* Memoized compilation keyed by (schema fingerprint, program).  The
   cache holds compiled artifacts for exactly one fingerprint at a
   time: when the Supervisor restructures the schema the fingerprint
   changes and the whole generation is flushed — a stale plan bakes in
   access paths and register layouts that no longer exist, so partial
   retention would be wrong, not just wasteful.

   Not internally synchronized: intended for per-shard use, where one
   domain owns the shard (and its cache) at any moment. *)

type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  mutable fingerprint : string option;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable drift_invalidations : int;
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  drift_invalidations : int;
  size : int;
}

let create ?(size = 64) () =
  { table = Hashtbl.create size;
    fingerprint = None;
    hits = 0;
    misses = 0;
    invalidations = 0;
    drift_invalidations = 0;
  }

(* Observed cardinalities drifted past the serving threshold: flush
   the generation (cached plans were costed under stale statistics)
   and account it separately from schema-change invalidations.  The
   caller rebases its statistics and serves the next request under a
   new combined fingerprint. *)
let note_drift t =
  Hashtbl.reset t.table;
  t.fingerprint <- None;
  t.drift_invalidations <- t.drift_invalidations + 1

let find_or_compile t ~fingerprint key ~compile =
  (match t.fingerprint with
  | Some fp when String.equal fp fingerprint -> ()
  | Some _ ->
      Hashtbl.reset t.table;
      t.invalidations <- t.invalidations + 1;
      t.fingerprint <- Some fingerprint
  | None -> t.fingerprint <- Some fingerprint);
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      v
  | None ->
      t.misses <- t.misses + 1;
      let v = compile key in
      Hashtbl.add t.table key v;
      v

let stats (t : ('k, 'v) t) =
  { hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    drift_invalidations = t.drift_invalidations;
    size = Hashtbl.length t.table;
  }

let zero_stats =
  { hits = 0; misses = 0; invalidations = 0; drift_invalidations = 0; size = 0 }

let add_stats a b =
  { hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    invalidations = a.invalidations + b.invalidations;
    drift_invalidations = a.drift_invalidations + b.drift_invalidations;
    size = a.size + b.size;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let schema_fingerprint schema = Digest.to_hex (Digest.string (Semantic.show schema))
