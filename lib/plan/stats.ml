open Ccv_common
open Ccv_model

(* Cardinality statistics: a point-in-time snapshot of the counts the
   stores already maintain (entity extents, per-field value buckets,
   association cardinalities), tagged with a digest so a compiled plan
   can carry the statistics it was costed under.  Plain data — no
   store handle survives into a snapshot, so shards can compare a
   baseline against live observations without touching each other's
   replicas. *)

(* How many hot values a field snapshot keeps verbatim.  Skew is what
   cost-based probing exploits: the top buckets are priced exactly,
   everything else by the residual average. *)
let hot_values = 8

type field_stat = {
  distinct : int;  (** distinct stored values *)
  max_bucket : int;  (** largest equality bucket *)
  hot : (Value.t * int) list;
      (** top-[hot_values] buckets, largest first (count-descending,
          value order breaking ties, so snapshots are deterministic) *)
}

type entity_stat = {
  count : int;
  field_stats : (string * field_stat) list;  (** canonical field names *)
}

type t = {
  fingerprint : string;
  entities : (string * entity_stat) list;  (** canonical entity names *)
  links : (string * int) list;  (** association/relation cardinalities *)
}

let fingerprint t = t.fingerprint

let render_counts entities links =
  let b = Buffer.create 256 in
  List.iter
    (fun (e, (s : entity_stat)) ->
      Buffer.add_string b (Printf.sprintf "E %s %d" e s.count);
      List.iter
        (fun (f, (fs : field_stat)) ->
          Buffer.add_string b
            (Printf.sprintf " %s:%d/%d" f fs.distinct fs.max_bucket);
          List.iter
            (fun (v, n) ->
              Buffer.add_string b (Printf.sprintf "=%s*%d" (Value.show v) n))
            fs.hot)
        s.field_stats;
      Buffer.add_char b '\n')
    entities;
  List.iter
    (fun (a, n) -> Buffer.add_string b (Printf.sprintf "A %s %d\n" a n))
    links;
  Buffer.contents b

let make ~entities ~links =
  let entities =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entities
  in
  let links = List.sort (fun (a, _) (b, _) -> String.compare a b) links in
  { fingerprint = Digest.to_hex (Digest.string (render_counts entities links));
    entities;
    links;
  }

let empty = make ~entities:[] ~links:[]

(* Fold a value-count table into a field snapshot: bucket counts
   sorted (count desc, value asc) for a deterministic hot list. *)
let field_stat_of_buckets buckets =
  let sorted =
    List.sort
      (fun (v1, n1) (v2, n2) ->
        match Int.compare n2 n1 with 0 -> Value.compare v1 v2 | c -> c)
      buckets
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  { distinct = List.length sorted;
    max_bucket = (match sorted with (_, n) :: _ -> n | [] -> 0);
    hot = take hot_values sorted;
  }

let entity_stat_of_rows (e : Semantic.entity) rows =
  let count = List.length rows in
  let field_stats =
    List.map
      (fun (f : Field.t) ->
        let cf = Field.canon f.name in
        let tbl : (Value.t, int) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun row ->
            let v = Option.value (Row.get row cf) ~default:Value.Null in
            Hashtbl.replace tbl v
              (1 + Option.value (Hashtbl.find_opt tbl v) ~default:0))
          rows;
        let buckets = Hashtbl.fold (fun v n acc -> (v, n) :: acc) tbl [] in
        (cf, field_stat_of_buckets buckets))
      e.fields
  in
  { count; field_stats }

(* Snapshot a semantic instance: every entity's extent grouped per
   stored field, every association's link count. *)
let of_sdb db =
  let schema = Sdb.schema db in
  let entities =
    List.map
      (fun (e : Semantic.entity) ->
        ( Field.canon e.ename,
          entity_stat_of_rows e (Sdb.rows_silent db e.ename) ))
      schema.Semantic.entities
  in
  let links =
    List.map
      (fun (a : Semantic.assoc) ->
        (Field.canon a.aname, List.length (Sdb.links_silent db a.aname)))
      schema.Semantic.assocs
  in
  make ~entities ~links

(* Host-store snapshots carry counts only (the drift check needs no
   bucket detail): build from whatever per-name counts a store
   exposes. *)
let of_counts ~entities ~links =
  make
    ~entities:
      (List.map
         (fun (name, count) ->
           (Field.canon name, { count; field_stats = [] }))
         entities)
    ~links

let entity_stat t ename = List.assoc_opt (Field.canon ename) t.entities

let entity_count t ename =
  match entity_stat t ename with Some s -> Some s.count | None -> None

let field_stat t ename fname =
  match entity_stat t ename with
  | None -> None
  | Some s -> List.assoc_opt (Field.canon fname) s.field_stats

let link_count t aname = List.assoc_opt (Field.canon aname) t.links

(* ------------------------------------------------------------------ *)
(* Drift: the largest relative change of any baseline count.  Names
   the observation no longer carries count as empty — a migrating or
   truncated extent is exactly the drift the plan cache must notice. *)

let drift ~baseline ~observed =
  let rel b o =
    float_of_int (abs (o - b)) /. float_of_int (max b 1)
  in
  let entity_drift =
    List.fold_left
      (fun acc (name, (s : entity_stat)) ->
        let o =
          match entity_count observed name with Some c -> c | None -> 0
        in
        Float.max acc (rel s.count o))
      0. baseline.entities
  in
  List.fold_left
    (fun acc (name, n) ->
      match link_count observed name with
      | Some o -> Float.max acc (rel n o)
      | None -> acc)
    entity_drift baseline.links

let pp ppf t =
  Fmt.pf ppf "@[<v>stats %s@ %a@ %a@]"
    (String.sub t.fingerprint 0 (min 8 (String.length t.fingerprint)))
    (Fmt.list (fun ppf (e, (s : entity_stat)) ->
         Fmt.pf ppf "  %s: %d row(s), %d field(s) profiled" e s.count
           (List.length s.field_stats)))
    t.entities
    (Fmt.list (fun ppf (a, n) -> Fmt.pf ppf "  %s: %d link(s)" a n))
    t.links
