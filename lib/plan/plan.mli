(** Query plans: each {!Ccv_abstract.Apattern} step resolved — once, at
    compile time — to a concrete access path, with its qualification
    pre-split into conjuncts and field names interned through
    {!Ccv_common.Symbol}.  This is the OPTIMIZER box of the paper's
    Figure 4.1 made explicit: the reference interpreter re-derives the
    access decision on every evaluation; a plan records it.

    Access-path choice is {e result-transparent}: index buckets are
    kept in extent order and re-filtered with the full qualification,
    so a plan always delivers exactly the rows a naive scan would —
    only the access counts differ. *)

open Ccv_common
open Ccv_model
open Ccv_abstract

(** The probe value of an indexed access: a literal, or a host variable
    resolved from the environment at run time. *)
type operand = Oconst of Value.t | Ovar of string

type access =
  | Indexed_probe of { field : Symbol.t; operand : operand }
      (** SELF with an equality conjunct over a declared stored field:
          probe the (entity, field) index via [Sdb.rows_eq]. *)
  | Link_traverse of { link_field : Symbol.t; source_field : Symbol.t }
      (** THROUGH: keyed traversal — probe the target's link-field
          index with the source's field value. *)
  | Assoc_scan of { source_is_left : bool }
      (** ASSOC via an endpoint: walk the link set filtered on the
          given side's key. *)
  | Key_lookup  (** VIA_ASSOC: entity fetch by primary key. *)
  | Extent_scan  (** residual full scan *)

type step = {
  pattern : Apattern.step;  (** the source-level step *)
  target : Symbol.t;  (** interned canonical target name *)
  access : access;
  conjuncts : Cond.t list;  (** qualification, pre-split *)
}

type t = { steps : step list; indexes : (string * string) list }

val of_query : Semantic.t -> Apattern.t -> t

(** The (entity, field) equality indexes this plan wants in place —
    exactly the set the reference interpreter's [ensure_query_indexes]
    would build per evaluation, hoisted to compile time. *)
val required_indexes : t -> (string * string) list

val fold_steps : ('a -> step -> 'a) -> 'a -> t -> 'a
(** Fold over the plan's resolved steps in access order (the Plan-side
    companion of the Traverse kit; used by the analyzer's lints). *)

val iter_steps : (step -> unit) -> t -> unit

val pp_access : Format.formatter -> access -> unit
val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit

(** Human-readable plan, one line per step. *)
val explain : t -> string
