(** Query plans: each {!Ccv_abstract.Apattern} step resolved — once, at
    compile time — to a concrete access path, with its qualification
    pre-split into conjuncts and field names interned through
    {!Ccv_common.Symbol}.  This is the OPTIMIZER box of the paper's
    Figure 4.1 made explicit: the reference interpreter re-derives the
    access decision on every evaluation; a plan records it.

    Access-path choice is {e result-transparent}: index buckets are
    kept in extent order and re-filtered with the full qualification,
    so a plan always delivers exactly the rows a naive scan would —
    only the access counts differ. *)

open Ccv_common
open Ccv_model
open Ccv_abstract

(** The probe value of an indexed access: a literal, or a host variable
    resolved from the environment at run time. *)
type operand = Oconst of Value.t | Ovar of string

type access =
  | Indexed_probe of { field : Symbol.t; operand : operand }
      (** SELF with an equality conjunct over a declared stored field:
          probe the (entity, field) index via [Sdb.rows_eq]. *)
  | Link_traverse of { link_field : Symbol.t; source_field : Symbol.t }
      (** THROUGH: keyed traversal — probe the target's link-field
          index with the source's field value. *)
  | Assoc_scan of { source_is_left : bool }
      (** ASSOC via an endpoint: walk the link set filtered on the
          given side's key. *)
  | Key_lookup  (** VIA_ASSOC: entity fetch by primary key. *)
  | Extent_scan  (** residual full scan *)

type step = {
  pattern : Apattern.step;  (** the source-level step *)
  target : Symbol.t;  (** interned canonical target name *)
  access : access;
  conjuncts : Cond.t list;  (** qualification, pre-split *)
}

type t = { steps : step list; indexes : (string * string) list }

(** [of_query ?stats schema q] resolves every step of [q] to an access
    path.  Without [?stats] the choice is the fixed heuristic (first
    eligible equality conjunct, mirroring the interpreter).  With a
    statistics snapshot the small candidate space is enumerated and the
    cheapest picked: every eligible equality conjunct is priced as a
    probe (hot-bucket exact, residual average otherwise), conjuncts are
    reordered most-selective first, and [field = const] predicates are
    pushed down through link traversals into the step binding the
    source.  All choices are result-transparent — a cost-chosen plan
    delivers exactly the rows the heuristic plan would. *)
val of_query : ?stats:Stats.t -> Semantic.t -> Apattern.t -> t

(** The (entity, field) equality indexes this plan wants in place —
    exactly the set the reference interpreter's [ensure_query_indexes]
    would build per evaluation, hoisted to compile time. *)
val required_indexes : t -> (string * string) list

val fold_steps : ('a -> step -> 'a) -> 'a -> t -> 'a
(** Fold over the plan's resolved steps in access order (the Plan-side
    companion of the Traverse kit; used by the analyzer's lints). *)

val iter_steps : (step -> unit) -> t -> unit

(** Per-step cost estimate under a statistics snapshot. *)
type step_cost = {
  cstep : step;
  rows_touched : float;  (** per execution of the step *)
  rows_out : float;  (** per execution, after the qualification *)
  cost : float;  (** executions x (overhead + rows touched) *)
}

(** [cost_steps ?stats schema t] prices each step: the running
    cardinality (contexts produced so far) times the rows the access
    path touches per execution.  [?stats] defaults to {!Stats.empty},
    under which every candidate prices by the nominal defaults. *)
val cost_steps : ?stats:Stats.t -> Semantic.t -> t -> step_cost list

val total_cost : ?stats:Stats.t -> Semantic.t -> t -> float

val pp_access : Format.formatter -> access -> unit
val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit

(** Human-readable plan, one line per step. *)
val explain : t -> string

(** Like {!explain}, with per-step row estimates and costs under the
    given snapshot, plus a total line. *)
val explain_costs : ?stats:Stats.t -> Semantic.t -> t -> string
