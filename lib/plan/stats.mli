(** Cardinality statistics snapshots.

    A snapshot captures the counts the stores already maintain —
    entity extent sizes, per-field equality-bucket profiles,
    association cardinalities — as plain data tagged with a digest.
    Compiled plans carry the fingerprint of the statistics they were
    costed under, so the serving layer can detect when observed
    cardinalities have drifted away from a plan's assumptions and
    recost it. *)

open Ccv_common
open Ccv_model

type field_stat = {
  distinct : int;  (** distinct stored values *)
  max_bucket : int;  (** largest equality bucket *)
  hot : (Value.t * int) list;
      (** top buckets, count-descending (value order breaks ties) *)
}

type entity_stat = {
  count : int;
  field_stats : (string * field_stat) list;  (** canonical field names *)
}

type t = {
  fingerprint : string;
  entities : (string * entity_stat) list;  (** canonical entity names *)
  links : (string * int) list;  (** association cardinalities *)
}

val empty : t
val fingerprint : t -> string

(** [make ~entities ~links] normalises (sorts, canonical order) and
    fingerprints a snapshot built from arbitrary per-name stats. *)
val make :
  entities:(string * entity_stat) list -> links:(string * int) list -> t

(** Snapshot a semantic instance: full per-field bucket profiles. *)
val of_sdb : Sdb.t -> t

(** Snapshot from bare per-name counts (host stores expose counts but
    not necessarily bucket profiles); field profiles are left empty. *)
val of_counts :
  entities:(string * int) list -> links:(string * int) list -> t

val entity_stat : t -> string -> entity_stat option
val entity_count : t -> string -> int option
val field_stat : t -> string -> string -> field_stat option
val link_count : t -> string -> int option

(** [drift ~baseline ~observed] is the largest relative count change
    of any name present in [baseline]: [|o - b| / max b 1], maximised
    over entities and links.  An entity missing from [observed] counts
    as drifted to zero. *)
val drift : baseline:t -> observed:t -> float

val pp : Format.formatter -> t -> unit
