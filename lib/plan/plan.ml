open Ccv_common
open Ccv_model
open Ccv_abstract

type operand = Oconst of Value.t | Ovar of string

type access =
  | Indexed_probe of { field : Symbol.t; operand : operand }
  | Link_traverse of { link_field : Symbol.t; source_field : Symbol.t }
  | Assoc_scan of { source_is_left : bool }
  | Key_lookup
  | Extent_scan

type step = {
  pattern : Apattern.step;
  target : Symbol.t;
  access : access;
  conjuncts : Cond.t list;
}

type t = { steps : step list; indexes : (string * string) list }

(* Mirror of the interpreter's effective probe choice: the first
   equality conjunct over a declared stored field whose other operand is
   a constant or a host variable.  Any probe is result-transparent
   (index buckets are in extent order and re-filtered with the full
   qualification), so this choice affects access counts, never
   answers. *)
let probe_access schema ename qual =
  match Semantic.find_entity schema ename with
  | None -> Extent_scan
  | Some e -> (
      let pick c =
        match c with
        | Cond.Cmp (Cond.Eq, Cond.Field f, rhs)
        | Cond.Cmp (Cond.Eq, rhs, Cond.Field f) ->
            if not (Field.mem e.Semantic.fields f) then None
            else (
              match rhs with
              | Cond.Const v -> Some (f, Oconst v)
              | Cond.Var x -> Some (f, Ovar x)
              | Cond.Field _ | Cond.Add _ | Cond.Sub _ | Cond.Mul _
              | Cond.Concat _ -> None)
        | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
        | Cond.Is_null _ | Cond.Is_not_null _ -> None
      in
      match List.find_map pick (Cond.split_conjuncts qual) with
      | Some (f, op) -> Indexed_probe { field = Symbol.intern f; operand = op }
      | None -> Extent_scan)

(* The indexes the reference interpreter would build for this step
   (ensure_query_indexes): every eq-conjunct field of a SELF step and
   the link field of a THROUGH step.  [Sdb.ensure_index] silently
   ignores undeclared fields, so no filtering is needed here. *)
let step_indexes = function
  | Apattern.Self { target; qual } ->
      List.filter_map
        (function
          | Cond.Cmp (Cond.Eq, Cond.Field f, _)
          | Cond.Cmp (Cond.Eq, _, Cond.Field f) -> Some (target, f)
          | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
          | Cond.Is_null _ | Cond.Is_not_null _ -> None)
        (Cond.split_conjuncts qual)
  | Apattern.Through { target; link = tf, _; _ } -> [ (target, tf) ]
  | Apattern.Assoc_via _ | Apattern.Via_assoc _ -> []

let of_step schema p =
  let access =
    match p with
    | Apattern.Self { target; qual } -> probe_access schema target qual
    | Apattern.Through { link = tf, sf; _ } ->
        Link_traverse
          { link_field = Symbol.intern tf; source_field = Symbol.intern sf }
    | Apattern.Assoc_via { assoc; source; _ } -> (
        match Semantic.find_assoc schema assoc with
        | Some a ->
            Assoc_scan { source_is_left = Field.name_equal a.Semantic.left source }
        | None -> Assoc_scan { source_is_left = true })
    | Apattern.Via_assoc _ -> Key_lookup
  in
  { pattern = p;
    target = Symbol.intern (Apattern.target_of p);
    access;
    conjuncts = Cond.split_conjuncts (Apattern.qual_of p);
  }

let dedup_pairs pairs =
  let rec go seen = function
    | [] -> List.rev seen
    | (e, f) :: rest ->
        if
          List.exists
            (fun (e', f') -> Field.name_equal e e' && Field.name_equal f f')
            seen
        then go seen rest
        else go ((e, f) :: seen) rest
  in
  go [] pairs

module F = Traverse.Fold (Traverse.Unit_env)

let of_query schema q =
  (* one kit pass resolves each step and collects its wanted indexes *)
  let steps, indexes =
    F.query
      { F.default with
        F.step =
          (fun _ () (steps, idx) p ->
            (of_step schema p :: steps, List.rev_append (step_indexes p) idx));
      }
      () ([], []) q
  in
  { steps = List.rev steps; indexes = dedup_pairs (List.rev indexes) }

let required_indexes t = t.indexes

let fold_steps f acc t = List.fold_left f acc t.steps
let iter_steps f t = List.iter f t.steps

let pp_operand ppf = function
  | Oconst v -> Value.pp ppf v
  | Ovar x -> Fmt.pf ppf ":%s" x

let pp_access ppf = function
  | Indexed_probe { field; operand } ->
      Fmt.pf ppf "PROBE %a = %a" Symbol.pp field pp_operand operand
  | Link_traverse { link_field; source_field } ->
      Fmt.pf ppf "TRAVERSE (%a,%a)" Symbol.pp link_field Symbol.pp source_field
  | Assoc_scan { source_is_left } ->
      Fmt.pf ppf "LINKS from %s" (if source_is_left then "left" else "right")
  | Key_lookup -> Fmt.string ppf "KEY LOOKUP"
  | Extent_scan -> Fmt.string ppf "SCAN"

let pp_step ppf s =
  Fmt.pf ppf "%a [%a]%s" Symbol.pp s.target pp_access s.access
    (match s.conjuncts with
    | [] -> ""
    | cs -> Fmt.str " WHERE %a" Fmt.(list ~sep:(any " AND ") Cond.pp) cs)

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_step) t.steps
let explain t = Fmt.str "%a" pp t
