open Ccv_common
open Ccv_model
open Ccv_abstract

type operand = Oconst of Value.t | Ovar of string

type access =
  | Indexed_probe of { field : Symbol.t; operand : operand }
  | Link_traverse of { link_field : Symbol.t; source_field : Symbol.t }
  | Assoc_scan of { source_is_left : bool }
  | Key_lookup
  | Extent_scan

type step = {
  pattern : Apattern.step;
  target : Symbol.t;
  access : access;
  conjuncts : Cond.t list;
}

type t = { steps : step list; indexes : (string * string) list }

let operand_value = function Oconst v -> Some v | Ovar _ -> None

(* The equality conjuncts a probe could use: [field = const] or
   [field = var] (either orientation) over a declared stored field.
   Any of them is result-transparent to probe (index buckets are in
   extent order and re-filtered with the full qualification), so the
   choice among them affects access counts, never answers. *)
let eq_candidates fields conjuncts =
  List.filter_map
    (fun c ->
      match c with
      | Cond.Cmp (Cond.Eq, Cond.Field f, rhs)
      | Cond.Cmp (Cond.Eq, rhs, Cond.Field f) ->
          if not (Field.mem fields f) then None
          else (
            match rhs with
            | Cond.Const v -> Some (c, f, Oconst v)
            | Cond.Var x -> Some (c, f, Ovar x)
            | Cond.Field _ | Cond.Add _ | Cond.Sub _ | Cond.Mul _
            | Cond.Concat _ -> None)
      | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
      | Cond.Is_null _ | Cond.Is_not_null _ -> None)
    conjuncts

(* Probe choice over a pre-split conjunct list.  Without statistics
   this mirrors the interpreter's convention (first eligible conjunct);
   with statistics every candidate is priced by expected bucket size
   and the cheapest wins, first-of-equals so a tie reproduces the
   heuristic choice. *)
let choose_probe ?stats fields ename conjuncts =
  match eq_candidates fields conjuncts with
  | [] -> Extent_scan
  | (_, f, op) :: _ as cands -> (
      match stats with
      | None -> Indexed_probe { field = Symbol.intern f; operand = op }
      | Some st ->
          let _, best_f, best_op =
            List.fold_left
              (fun ((best_cost, _, _) as best) (_, f, op) ->
                let cost = Cost.eq_rows st ename f (operand_value op) in
                if cost < best_cost then (cost, f, op) else best)
              (Cost.eq_rows st ename f (operand_value op), f, op)
              (List.tl cands)
          in
          Indexed_probe { field = Symbol.intern best_f; operand = best_op })

let probe_access ?stats schema ename qual =
  match Semantic.find_entity schema ename with
  | None -> Extent_scan
  | Some e ->
      choose_probe ?stats e.Semantic.fields ename (Cond.split_conjuncts qual)

(* With statistics, move the probe-eligible equality conjuncts to the
   front ordered most-selective first, so compiled conjunct evaluation
   short-circuits on the cheapest filter.  Only the eligible class is
   reordered (total on declared fields — the same class the
   optimizer's hoist rewrite already moves); everything else keeps its
   original relative order. *)
let order_conjuncts ?stats fields ename conjuncts =
  match stats with
  | None -> conjuncts
  | Some st ->
      let cands = eq_candidates fields conjuncts in
      if cands = [] then conjuncts
      else
        let eligible = List.map (fun (c, _, _) -> c) cands in
        let rest =
          List.filter
            (fun c -> not (List.memq c eligible))
            conjuncts
        in
        let priced =
          List.map
            (fun (c, f, op) ->
              (Cost.eq_rows st ename f (operand_value op), c))
            cands
        in
        let sorted =
          List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) priced
        in
        List.map snd sorted @ rest

(* The indexes the reference interpreter would build for this step
   (ensure_query_indexes): every eq-conjunct field of a SELF step and
   the link field of a THROUGH step.  [Sdb.ensure_index] silently
   ignores undeclared fields, so no filtering is needed here. *)
let step_indexes = function
  | Apattern.Self { target; qual } ->
      List.filter_map
        (function
          | Cond.Cmp (Cond.Eq, Cond.Field f, _)
          | Cond.Cmp (Cond.Eq, _, Cond.Field f) -> Some (target, f)
          | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
          | Cond.Is_null _ | Cond.Is_not_null _ -> None)
        (Cond.split_conjuncts qual)
  | Apattern.Through { target; link = tf, _; _ } -> [ (target, tf) ]
  | Apattern.Assoc_via _ | Apattern.Via_assoc _ -> []

let fields_of schema name =
  match Semantic.find_entity schema name with
  | Some e -> e.Semantic.fields
  | None -> (
      match Semantic.find_assoc schema name with
      | Some a -> a.Semantic.fields
      | None -> [])

let of_step ?stats schema p =
  let target = Apattern.target_of p in
  let access =
    match p with
    | Apattern.Self { target; qual } -> probe_access ?stats schema target qual
    | Apattern.Through { link = tf, sf; _ } ->
        Link_traverse
          { link_field = Symbol.intern tf; source_field = Symbol.intern sf }
    | Apattern.Assoc_via { assoc; source; _ } -> (
        match Semantic.find_assoc schema assoc with
        | Some a ->
            Assoc_scan { source_is_left = Field.name_equal a.Semantic.left source }
        | None -> Assoc_scan { source_is_left = true })
    | Apattern.Via_assoc _ -> Key_lookup
  in
  { pattern = p;
    target = Symbol.intern target;
    access;
    conjuncts =
      order_conjuncts ?stats (fields_of schema target) target
        (Cond.split_conjuncts (Apattern.qual_of p));
  }

let dedup_pairs pairs =
  let rec go seen = function
    | [] -> List.rev seen
    | (e, f) :: rest ->
        if
          List.exists
            (fun (e', f') -> Field.name_equal e e' && Field.name_equal f f')
            seen
        then go seen rest
        else go ((e, f) :: seen) rest
  in
  go [] pairs

(* Predicate pushdown through link traversals: a THROUGH step over
   link [(tf, sf)] whose qualification pins [tf = const] can only match
   source records with [sf = const] — any source with a different (or
   null) [sf] yields nothing through the link.  Pushing [sf = const]
   into the step that binds the source filters those records before
   the traversal runs, and may upgrade that step's access to an
   indexed probe.  Plan conjuncts are evaluated by compiled runs only,
   so the reference interpreter stays the differential oracle. *)
let push_down ?stats schema steps =
  let arr = Array.of_list steps in
  let extra = ref [] in
  Array.iteri
    (fun i s ->
      match s.pattern with
      | Apattern.Through { source; link = tf, sf; _ } -> (
          let binder =
            let rec last_before j best =
              if j >= i then best
              else
                last_before (j + 1)
                  (if Field.name_equal (Symbol.name arr.(j).target) source then
                     Some j
                   else best)
            in
            last_before 0 None
          in
          let const =
            List.find_map
              (function
                | Cond.Cmp (Cond.Eq, Cond.Field f, Cond.Const v)
                | Cond.Cmp (Cond.Eq, Cond.Const v, Cond.Field f)
                  when Field.name_equal f tf -> Some v
                | _ -> None)
              s.conjuncts
          in
          match (binder, const, Semantic.find_entity schema source) with
          | Some j, Some v, Some e when Field.mem e.Semantic.fields sf ->
              let pushed = Cond.Cmp (Cond.Eq, Cond.Field sf, Cond.Const v) in
              let prev = arr.(j) in
              if not (List.exists (Cond.equal pushed) prev.conjuncts) then (
                let conjuncts = pushed :: prev.conjuncts in
                let access =
                  match prev.pattern with
                  | Apattern.Self _ ->
                      choose_probe ?stats e.Semantic.fields source conjuncts
                  | _ -> prev.access
                in
                arr.(j) <- { prev with conjuncts; access };
                extra := (source, sf) :: !extra)
          | _ -> ())
      | Apattern.Self _ | Apattern.Assoc_via _ | Apattern.Via_assoc _ -> ())
    arr;
  (Array.to_list arr, List.rev !extra)

module F = Traverse.Fold (Traverse.Unit_env)

let of_query ?stats schema q =
  (* one kit pass resolves each step and collects its wanted indexes *)
  let steps, indexes =
    F.query
      { F.default with
        F.step =
          (fun _ () (steps, idx) p ->
            (of_step ?stats schema p :: steps,
             List.rev_append (step_indexes p) idx));
      }
      () ([], []) q
  in
  let steps = List.rev steps in
  let steps, pushed_indexes =
    match stats with
    | None -> (steps, [])
    | Some _ -> push_down ?stats schema steps
  in
  { steps; indexes = dedup_pairs (List.rev indexes @ pushed_indexes) }

let required_indexes t = t.indexes

let fold_steps f acc t = List.fold_left f acc t.steps
let iter_steps f t = List.iter f t.steps

(* ------------------------------------------------------------------ *)
(* Costing: estimated rows touched, composed step by step.  The
   running cardinality is how many times the step executes (one run
   per context produced so far); each execution touches the rows its
   access path reaches and emits the fraction the qualification
   keeps. *)

let selectivity_product stats ename cands ~except =
  List.fold_left
    (fun acc (c, f, op) ->
      if List.memq c except then acc
      else acc *. Cost.eq_selectivity stats ename f (operand_value op))
    1. cands

let step_estimate stats schema s =
  let ename = Symbol.name s.target in
  let cands = eq_candidates (fields_of schema ename) s.conjuncts in
  let touched, probed =
    match (s.access, s.pattern) with
    | Indexed_probe { field; operand }, _ ->
        let f = Symbol.name field in
        ( Cost.eq_rows stats ename f (operand_value operand),
          List.filter_map
            (fun (c, f', _) ->
              if Field.name_equal f f' then Some c else None)
            cands )
    | Link_traverse { link_field; _ }, _ ->
        (Cost.eq_rows stats ename (Symbol.name link_field) None, [])
    | Assoc_scan _, Apattern.Assoc_via { assoc; source; _ } ->
        (Cost.link_fanout stats assoc ~source, [])
    | Assoc_scan _, _ -> (Cost.link_rows stats ename, [])
    | Key_lookup, _ -> (1., [])
    | Extent_scan, _ -> (Cost.entity_rows stats ename, [])
  in
  let out = touched *. selectivity_product stats ename cands ~except:probed in
  (touched, Float.min touched out)

type step_cost = {
  cstep : step;
  rows_touched : float;  (** per execution *)
  rows_out : float;  (** per execution, after the qualification *)
  cost : float;  (** executions x (overhead + rows touched) *)
}

let cost_steps ?(stats = Stats.empty) schema t =
  let _, costs =
    List.fold_left
      (fun (card, acc) s ->
        let touched, out = step_estimate stats schema s in
        let cost = card *. (Cost.step_overhead +. touched) in
        ( card *. out,
          { cstep = s; rows_touched = touched; rows_out = out; cost } :: acc ))
      (1., []) t.steps
  in
  List.rev costs

let total_cost ?stats schema t =
  List.fold_left (fun acc c -> acc +. c.cost) 0. (cost_steps ?stats schema t)

(* ------------------------------------------------------------------ *)

let pp_operand ppf = function
  | Oconst v -> Value.pp ppf v
  | Ovar x -> Fmt.pf ppf ":%s" x

let pp_access ppf = function
  | Indexed_probe { field; operand } ->
      Fmt.pf ppf "PROBE %a = %a" Symbol.pp field pp_operand operand
  | Link_traverse { link_field; source_field } ->
      Fmt.pf ppf "TRAVERSE (%a,%a)" Symbol.pp link_field Symbol.pp source_field
  | Assoc_scan { source_is_left } ->
      Fmt.pf ppf "LINKS from %s" (if source_is_left then "left" else "right")
  | Key_lookup -> Fmt.string ppf "KEY LOOKUP"
  | Extent_scan -> Fmt.string ppf "SCAN"

let pp_step ppf s =
  Fmt.pf ppf "%a [%a]%s" Symbol.pp s.target pp_access s.access
    (match s.conjuncts with
    | [] -> ""
    | cs -> Fmt.str " WHERE %a" Fmt.(list ~sep:(any " AND ") Cond.pp) cs)

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_step) t.steps
let explain t = Fmt.str "%a" pp t

let explain_costs ?stats schema t =
  let costs = cost_steps ?stats schema t in
  let lines =
    List.map
      (fun c ->
        Fmt.str "%a  ~%.1f row(s) touched, ~%.1f out, cost %.1f" pp_step
          c.cstep c.rows_touched c.rows_out c.cost)
      costs
  in
  let total = List.fold_left (fun acc c -> acc +. c.cost) 0. costs in
  String.concat "\n" (lines @ [ Fmt.str "total estimated cost %.1f" total ])
