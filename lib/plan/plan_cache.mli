(** Memoized plan compilation keyed by [(schema fingerprint, program)]
    with hit/miss accounting.  A fingerprint change — the Supervisor
    restructured the schema — flushes the whole cache, since compiled
    plans bake in access paths derived from the old schema.

    Not internally synchronized: use one cache per shard (one domain
    owns a shard at any moment). *)

open Ccv_model

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** generation flushes on fingerprint change *)
  drift_invalidations : int;  (** generation flushes via {!note_drift} *)
  size : int;
}

val create : ?size:int -> unit -> ('k, 'v) t

(** [find_or_compile t ~fingerprint key ~compile] — the cached value
    for [key], compiling (and recording a miss) when absent.  When
    [fingerprint] differs from the cache's current generation, the
    cache is flushed first and an invalidation recorded. *)
val find_or_compile :
  ('k, 'v) t -> fingerprint:string -> 'k -> compile:('k -> 'v) -> 'v

(** [note_drift t] — observed cardinalities drifted past the serving
    threshold: flush the generation (its plans were costed under stale
    statistics) and count a drift invalidation.  The next
    [find_or_compile] recompiles under whatever fingerprint the caller
    rebased to. *)
val note_drift : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> stats
val zero_stats : stats
val add_stats : stats -> stats -> stats

(** Hits / (hits + misses); 0 when no lookups happened. *)
val hit_rate : stats -> float

(** Stable digest of a schema's rendered form, for use as the
    [~fingerprint] argument. *)
val schema_fingerprint : Semantic.t -> string
