(** Semantic-model database instances: entity extents plus association
    links, with the model's integrity constraints enforced
    declaratively — the paper's §3.1 thesis is that centralising these
    rules (instead of burying them in program logic) is what makes
    conversion tractable; experiment E5 measures exactly this. *)

open Ccv_common

type link = {
  lkey : Value.t list;  (** key of the left entity instance *)
  rkey : Value.t list;
  attrs : Row.t;  (** association attributes *)
}

type t

val create : Semantic.t -> t
val schema : t -> Semantic.t
val counters : t -> Counters.t

val rows : t -> string -> Row.t list
val rows_silent : t -> string -> Row.t list
val links : t -> string -> link list
val links_silent : t -> string -> link list

(** [find_entity db ename key] — the instance with that key.  When the
    entity has a singleton key backed by an equality index (built
    automatically at {!create}), this is an index probe instead of an
    extent scan. *)
val find_entity : t -> string -> Value.t list -> Row.t option

(** {2 Equality indexes}

    Opt-in per-(entity, field) indexes: [value -> rows], buckets kept
    in extent order so indexed reads deliver exactly what a scan
    would.  Singleton entity key fields are indexed automatically;
    anything else via [ensure_index].  Indexes are rebuilt whenever the
    entity's extent changes, so every write path maintains them. *)

(** Silently returns [db] unchanged for unknown entities or
    undeclared fields, so callers may request indexes speculatively. *)
val ensure_index : t -> string -> string -> t

val has_index : t -> string -> string -> bool

(** [rows_eq db ename field v] — rows whose [field] equals [v], in
    extent order; [None] when no index exists (fall back to a scan).
    Charges one read for the probe plus one per row delivered. *)
val rows_eq : t -> string -> string -> Value.t -> Row.t list option

val rows_eq_silent : t -> string -> string -> Value.t -> Row.t list option

val key_of : Semantic.entity -> Row.t -> Value.t list

(** A link rendered as a row: left key fields, right key fields, then
    attributes (the EMP-DEPT(E#,D#,YEAR-OF-SERVICE) presentation of
    section 4.1). *)
val link_row : Semantic.t -> Semantic.assoc -> link -> Row.t

(** Insert with declarative checking: key uniqueness, non-null keys,
    [Field_not_null] constraints. *)
val insert_entity : t -> string -> Row.t -> (t, Status.t) result

val insert_entity_exn : t -> string -> Row.t -> t

(** Link two existing instances; checks endpoint existence (the §3.1
    course-offering rule), cardinality and participation limits. *)
val link : ?attrs:Row.t -> t -> string -> left:Value.t list ->
  right:Value.t list -> (t, Status.t) result

val link_exn :
  ?attrs:Row.t -> t -> string -> left:Value.t list -> right:Value.t list -> t

(** Bulk insert: the checks of {!insert_entity} applied in element
    order (each against the instance plus the batch's accepted
    prefix), with one extent splice and one index rebuild per call —
    the fold equivalent is quadratic in the extent.  Returns the
    rejected rows with their statuses, in input order. *)
val insert_all : t -> string -> Row.t list -> t * (Row.t * Status.t) list

(** Bulk link ([(left, right, attrs)] triples): same contract as
    {!insert_all} relative to {!link}. *)
val link_all :
  t -> string -> (Value.t list * Value.t list * Row.t) list ->
  t * Status.t list

val unlink :
  t -> string -> left:Value.t list -> right:Value.t list -> (t, Status.t) result

(** [delete_entity db ename key ~cascade]: characterizing dependents
    always die with their defined entity; links are removed.  Without
    [cascade], a deletion that would break a [Total_*] constraint for a
    surviving partner is rejected; with it, the partner dies too. *)
val delete_entity :
  t -> string -> Value.t list -> cascade:bool -> (t, Status.t) result

val update_entity :
  t -> string -> Value.t list -> (string * Value.t) list -> (t, Status.t) result

(** Audit the whole instance against every declared constraint;
    returns human-readable violations (empty = consistent). *)
val validate : t -> string list

(** Partners of one instance through an association. *)
val partners_of_left : t -> string -> Value.t list -> (Row.t * Row.t) list
(** (attrs, right row) pairs. *)

val partners_of_right : t -> string -> Value.t list -> (Row.t * Row.t) list

val equal_contents : t -> t -> bool
val total_instances : t -> int
val pp : Format.formatter -> t -> unit
