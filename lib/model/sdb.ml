open Ccv_common
module Smap = Map.Make (String)
module Vmap = Map.Make (Value)

type link = { lkey : Value.t list; rkey : Value.t list; attrs : Row.t }

type t = {
  schema : Semantic.t;
  extents : (string * Row.t list) list;
  link_sets : (string * link list) list;
  indexes : Row.t list Vmap.t Smap.t Smap.t;
      (* entity -> field -> value -> rows holding that value, in extent
         order so indexed answers read exactly like scan answers. *)
  counters : Counters.t;
}

(* Buckets are rebuilt whole on write: extent mutation is already O(n)
   list surgery, so reindexing adds only a log factor. *)
let build_index field rows =
  Vmap.map List.rev
    (List.fold_left
       (fun m row ->
         let v = Option.value (Row.get row field) ~default:Value.Null in
         Vmap.update v (fun b -> Some (row :: Option.value b ~default:[])) m)
       Vmap.empty rows)

let create schema =
  (* Singleton entity keys get an equality index up front — they back
     [find_entity], the hottest probe in the constraint checks. *)
  let indexes =
    List.fold_left
      (fun acc (e : Semantic.entity) ->
        let fields =
          match e.key with
          | [ k ] -> Smap.singleton (Field.canon k) Vmap.empty
          | [] | _ :: _ -> Smap.empty
        in
        Smap.add (Field.canon e.ename) fields acc)
      Smap.empty schema.Semantic.entities
  in
  { schema;
    extents = List.map (fun (e : Semantic.entity) -> (e.ename, [])) schema.Semantic.entities;
    link_sets = List.map (fun (a : Semantic.assoc) -> (a.aname, [])) schema.Semantic.assocs;
    indexes;
    counters = Counters.create ();
  }

let schema t = t.schema
let counters t = t.counters

let extent t ename =
  match List.assoc_opt (Field.canon ename) t.extents with
  | Some rows -> rows
  | None -> invalid_arg (Fmt.str "Sdb: unknown entity %s" ename)

let link_set t aname =
  match List.assoc_opt (Field.canon aname) t.link_sets with
  | Some ls -> ls
  | None -> invalid_arg (Fmt.str "Sdb: unknown association %s" aname)

let rows t ename =
  let r = extent t ename in
  Counters.record_reads t.counters (List.length r);
  r

let rows_silent t ename = extent t ename

let links t aname =
  let ls = link_set t aname in
  Counters.record_reads t.counters (List.length ls);
  ls

let links_silent t aname = link_set t aname

let key_of (e : Semantic.entity) row =
  List.map (fun k -> Option.value (Row.get row k) ~default:Value.Null) e.key

let keys_equal = fun a b -> List.compare Value.compare a b = 0

(* Silent index probe: [None] when the field carries no index; [Some
   bucket] (possibly empty) when it does. *)
let bucket_opt t ename field v =
  match Smap.find_opt (Field.canon ename) t.indexes with
  | None -> None
  | Some fields -> (
      match Smap.find_opt (Field.canon field) fields with
      | None -> None
      | Some vm -> Some (Option.value (Vmap.find_opt v vm) ~default:[]))

let has_index t ename field = bucket_opt t ename field Value.Null <> None

let ensure_index t ename field =
  let en = Field.canon ename and fn = Field.canon field in
  match Semantic.find_entity t.schema ename with
  | None -> t
  | Some decl ->
      if not (Field.mem decl.fields field) || has_index t en fn then t
      else
        let fields =
          Smap.add fn
            (build_index fn (extent t en))
            (Option.value (Smap.find_opt en t.indexes) ~default:Smap.empty)
        in
        { t with indexes = Smap.add en fields t.indexes }

let rows_eq_silent t ename field v = bucket_opt t ename field v

let rows_eq t ename field v =
  match bucket_opt t ename field v with
  | None -> None
  | Some bucket ->
      (* One read for the probe, then the rows actually delivered —
         versus [rows], which charges the whole extent. *)
      Counters.record_reads t.counters (1 + List.length bucket);
      Some bucket

let find_entity t ename key =
  let decl = Semantic.find_entity_exn t.schema ename in
  let pool =
    match (decl.key, key) with
    | [ kf ], [ kv ] -> (
        match bucket_opt t decl.ename kf kv with
        | Some bucket ->
            Counters.record_read t.counters;
            bucket
        | None -> extent t decl.ename)
    | _ -> extent t decl.ename
  in
  List.find_opt
    (fun row ->
      Counters.record_read t.counters;
      keys_equal (key_of decl row) key)
    pool

let link_row schema (a : Semantic.assoc) l =
  let le = Semantic.find_entity_exn schema a.left in
  let re = Semantic.find_entity_exn schema a.right in
  Row.of_list
    (List.combine le.key l.lkey @ List.combine re.key l.rkey
    @ Row.to_list l.attrs)

let set_extent t ename rows =
  let ename = Field.canon ename in
  let indexes =
    match Smap.find_opt ename t.indexes with
    | None -> t.indexes
    | Some fields ->
        Smap.add ename
          (Smap.mapi (fun f _ -> build_index f rows) fields)
          t.indexes
  in
  { t with
    extents =
      List.map
        (fun (n, r) -> if String.equal n ename then (n, rows) else (n, r))
        t.extents;
    indexes;
  }

let set_links t aname ls =
  let aname = Field.canon aname in
  { t with
    link_sets =
      List.map
        (fun (n, l) -> if String.equal n aname then (n, ls) else (n, l))
        t.link_sets;
  }

let not_null_fields t (e : Semantic.entity) =
  e.key
  @ List.filter_map
      (function
        | Semantic.Field_not_null { entity; field }
          when Field.name_equal entity e.ename -> Some (Field.canon field)
        | Semantic.Field_not_null _ | Semantic.Total_left _
        | Semantic.Total_right _ | Semantic.Participation_limit _ -> None)
      t.schema.Semantic.constraints

let insert_entity t ename row =
  let decl = Semantic.find_entity_exn t.schema ename in
  let row = Row.coerce row decl.fields in
  if not (Row.conforms row decl.fields) then
    Error (Status.Invalid_request (Fmt.str "bad instance for %s" decl.ename))
  else
    let null_violation =
      List.find_opt
        (fun f -> Value.is_null (Option.value (Row.get row f) ~default:Value.Null))
        (not_null_fields t decl)
    in
    match null_violation with
    | Some f ->
        Error (Status.Constraint_violation (Fmt.str "%s.%s is null" decl.ename f))
    | None ->
        let key = key_of decl row in
        if find_entity t decl.ename key <> None
        then Error (Status.Duplicate_key decl.ename)
        else begin
          Counters.record_write t.counters;
          Ok (set_extent t decl.ename (extent t decl.ename @ [ row ]))
        end

let insert_entity_exn t ename row =
  match insert_entity t ename row with
  | Ok t -> t
  | Error s -> invalid_arg (Fmt.str "Sdb.insert_entity_exn %s: %a" ename Status.pp s)

let limit_of t aname =
  List.fold_left
    (fun acc -> function
      | Semantic.Participation_limit { assoc; per_left_max }
        when Field.name_equal assoc aname ->
          Some per_left_max
      | Semantic.Participation_limit _ | Semantic.Total_left _
      | Semantic.Total_right _ | Semantic.Field_not_null _ -> acc)
    None t.schema.Semantic.constraints

let link ?(attrs = Row.empty) t aname ~left ~right =
  let a = Semantic.find_assoc_exn t.schema aname in
  (* Existence: both endpoints must exist (the COURSE-OFFERING rule). *)
  if find_entity t a.left left = None then
    Error
      (Status.Constraint_violation
         (Fmt.str "%s: no %s instance for link" a.aname a.left))
  else if find_entity t a.right right = None then
    Error
      (Status.Constraint_violation
         (Fmt.str "%s: no %s instance for link" a.aname a.right))
  else
    let existing = link_set t a.aname in
    if List.exists (fun l -> keys_equal l.lkey left && keys_equal l.rkey right) existing
    then Error (Status.Duplicate_key a.aname)
    else if
      a.card = Semantic.One_to_many
      && List.exists (fun l -> keys_equal l.rkey right) existing
    then
      Error
        (Status.Constraint_violation
           (Fmt.str "%s: %s instance already has a %s partner" a.aname a.right
              a.left))
    else
      let over_limit =
        match limit_of t a.aname with
        | None -> false
        | Some n ->
            List.length (List.filter (fun l -> keys_equal l.lkey left) existing)
            >= n
      in
      if over_limit then
        Error
          (Status.Constraint_violation
             (Fmt.str "%s: participation limit reached" a.aname))
      else begin
        Counters.record_write t.counters;
        let attrs = Row.coerce attrs a.fields in
        Ok (set_links t a.aname (existing @ [ { lkey = left; rkey = right; attrs } ]))
      end

let link_exn ?attrs t aname ~left ~right =
  match link ?attrs t aname ~left ~right with
  | Ok t -> t
  | Error s -> invalid_arg (Fmt.str "Sdb.link_exn %s: %a" aname Status.pp s)

(* ------------------------------------------------------------------ *)
(* Bulk loading.  Exactly the checks of [insert_entity]/[link], applied
   in element order against the instance plus the batch's
   already-accepted prefix — a bulk call accepts and rejects precisely
   what the equivalent fold would — but with one extent/link-set
   splice and one index rebuild per call, and map-based duplicate and
   constraint probes.  The fold is O(batch * extent); this is
   O((extent + batch) log).  Data translation lives on these. *)

module Kmap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let insert_all t ename rows =
  let decl = Semantic.find_entity_exn t.schema ename in
  let nn = not_null_fields t decl in
  let existing = extent t decl.ename in
  let keys =
    ref
      (List.fold_left
         (fun m row -> Kmap.add (key_of decl row) () m)
         Kmap.empty existing)
  in
  let accepted = ref [] and rejected = ref [] in
  List.iter
    (fun orig ->
      let row = Row.coerce orig decl.fields in
      if not (Row.conforms row decl.fields) then
        rejected :=
          ( orig,
            Status.Invalid_request (Fmt.str "bad instance for %s" decl.ename) )
          :: !rejected
      else
        match
          List.find_opt
            (fun f ->
              Value.is_null (Option.value (Row.get row f) ~default:Value.Null))
            nn
        with
        | Some f ->
            rejected :=
              ( orig,
                Status.Constraint_violation
                  (Fmt.str "%s.%s is null" decl.ename f) )
              :: !rejected
        | None ->
            let key = key_of decl row in
            Counters.record_read t.counters;
            if Kmap.mem key !keys then
              rejected := (orig, Status.Duplicate_key decl.ename) :: !rejected
            else begin
              Counters.record_write t.counters;
              keys := Kmap.add key () !keys;
              accepted := row :: !accepted
            end)
    rows;
  let t =
    match !accepted with
    | [] -> t
    | acc -> set_extent t decl.ename (existing @ List.rev acc)
  in
  (t, List.rev !rejected)

let link_all t aname links =
  let a = Semantic.find_assoc_exn t.schema aname in
  let le = Semantic.find_entity_exn t.schema a.left in
  let re = Semantic.find_entity_exn t.schema a.right in
  let key_set decl =
    List.fold_left
      (fun m row -> Kmap.add (key_of decl row) () m)
      Kmap.empty
      (extent t decl.Semantic.ename)
  in
  let lkeys = key_set le and rkeys = key_set re in
  let existing = link_set t a.aname in
  let limit = limit_of t a.aname in
  let one_many = a.card = Semantic.One_to_many in
  let pairs = ref Kmap.empty
  and rused = ref Kmap.empty
  and lcount = ref Kmap.empty in
  let note lkey rkey =
    pairs := Kmap.add (lkey @ rkey) () !pairs;
    rused := Kmap.add rkey () !rused;
    lcount :=
      Kmap.update lkey
        (fun c -> Some (1 + Option.value c ~default:0))
        !lcount
  in
  List.iter (fun l -> note l.lkey l.rkey) existing;
  let accepted = ref [] and rejected = ref [] in
  List.iter
    (fun ((left, right, attrs) : Value.t list * Value.t list * Row.t) ->
      Counters.record_read t.counters;
      if not (Kmap.mem left lkeys) then
        rejected :=
          Status.Constraint_violation
            (Fmt.str "%s: no %s instance for link" a.aname a.left)
          :: !rejected
      else if not (Kmap.mem right rkeys) then
        rejected :=
          Status.Constraint_violation
            (Fmt.str "%s: no %s instance for link" a.aname a.right)
          :: !rejected
      else if Kmap.mem (left @ right) !pairs then
        rejected := Status.Duplicate_key a.aname :: !rejected
      else if one_many && Kmap.mem right !rused then
        rejected :=
          Status.Constraint_violation
            (Fmt.str "%s: %s instance already has a %s partner" a.aname
               a.right a.left)
          :: !rejected
      else if
        match limit with
        | None -> false
        | Some n -> Option.value (Kmap.find_opt left !lcount) ~default:0 >= n
      then
        rejected :=
          Status.Constraint_violation
            (Fmt.str "%s: participation limit reached" a.aname)
          :: !rejected
      else begin
        Counters.record_write t.counters;
        note left right;
        accepted :=
          { lkey = left; rkey = right; attrs = Row.coerce attrs a.fields }
          :: !accepted
      end)
    links;
  let t =
    match !accepted with
    | [] -> t
    | acc -> set_links t a.aname (existing @ List.rev acc)
  in
  (t, List.rev !rejected)

let unlink t aname ~left ~right =
  let a = Semantic.find_assoc_exn t.schema aname in
  let existing = link_set t a.aname in
  let keep =
    List.filter
      (fun l -> not (keys_equal l.lkey left && keys_equal l.rkey right))
      existing
  in
  if List.length keep = List.length existing then Error Status.Not_found
  else begin
    Counters.record_write t.counters;
    Ok (set_links t a.aname keep)
  end

let characterizing_of t ename =
  List.filter
    (fun (e : Semantic.entity) ->
      match e.kind with
      | Semantic.Characterizing owner -> Field.name_equal owner ename
      | Semantic.Defined -> false)
    t.schema.Semantic.entities

(* Rows of a characterizing entity belonging to a defined instance:
   linked through the (unique) association between them. *)
let dependents t (child : Semantic.entity) owner_name owner_key =
  match Semantic.assoc_between t.schema child.ename owner_name with
  | None -> []
  | Some a ->
      let child_is_right = Field.name_equal a.right child.ename in
      List.filter_map
        (fun l ->
          let okey, ckey =
            if child_is_right then (l.lkey, l.rkey) else (l.rkey, l.lkey)
          in
          if keys_equal okey owner_key then Some ckey else None)
        (link_set t a.aname)

let totality_partners t ename key =
  (* Associations whose totality constraint would break for a partner
     if this instance's links disappear: returns (entity, key) pairs
     of partners that would be orphaned. *)
  List.concat_map
    (fun (a : Semantic.assoc) ->
      let is_left = Field.name_equal a.left ename in
      let partner_entity = if is_left then a.right else a.left in
      let partner_total =
        List.exists
          (function
            | Semantic.Total_right x ->
                is_left && Field.name_equal x a.aname
            | Semantic.Total_left x ->
                (not is_left) && Field.name_equal x a.aname
            | Semantic.Participation_limit _ | Semantic.Field_not_null _ ->
                false)
          t.schema.Semantic.constraints
      in
      if not partner_total then []
      else
        List.filter_map
          (fun l ->
            let mine, theirs = if is_left then (l.lkey, l.rkey) else (l.rkey, l.lkey) in
            if keys_equal mine key then Some (partner_entity, theirs, a.aname)
            else None)
          (link_set t a.aname))
    (Semantic.assocs_of t.schema ename)

let rec delete_entity t ename key ~cascade =
  let decl = Semantic.find_entity_exn t.schema ename in
  match find_entity t decl.ename key with
  | None -> Error Status.Not_found
  | Some _ -> (
      let orphaned =
        List.filter
          (fun (pe, pk, aname) ->
            (* Orphaned only if this was the partner's sole link. *)
            let remaining =
              List.filter
                (fun l ->
                  let theirs =
                    if Field.name_equal (Semantic.find_assoc_exn t.schema aname).left pe
                    then l.lkey else l.rkey
                  in
                  keys_equal theirs pk)
                (link_set t aname)
            in
            List.length remaining <= 1)
          (totality_partners t decl.ename key)
      in
      if orphaned <> [] && not cascade then
        Error
          (Status.Constraint_violation
             (Fmt.str "deleting %s would orphan %s" decl.ename
                (String.concat ", " (List.map (fun (e, _, _) -> e) orphaned))))
      else
        (* Characterizing dependents die with their defined entity. *)
        let deps =
          List.concat_map
            (fun child ->
              List.map (fun k -> (child.Semantic.ename, k))
                (dependents t child decl.ename key))
            (characterizing_of t decl.ename)
        in
        let cascade_targets =
          deps @ List.map (fun (e, k, _) -> (e, k)) (if cascade then orphaned else [])
        in
        (* Remove the instance and all its links first. *)
        Counters.record_write t.counters;
        let t =
          set_extent t decl.ename
            (List.filter
               (fun r -> not (keys_equal (key_of decl r) key))
               (extent t decl.ename))
        in
        let t =
          List.fold_left
            (fun t (a : Semantic.assoc) ->
              let is_left = Field.name_equal a.left decl.ename in
              set_links t a.aname
                (List.filter
                   (fun l ->
                     let mine = if is_left then l.lkey else l.rkey in
                     not (keys_equal mine key))
                   (link_set t a.aname)))
            t
            (Semantic.assocs_of t.schema decl.ename)
        in
        let rec go t = function
          | [] -> Ok t
          | (e, k) :: rest -> (
              match delete_entity t e k ~cascade:true with
              | Ok t -> go t rest
              | Error Status.Not_found -> go t rest
              | Error err -> Error err)
        in
        go t cascade_targets)

let update_entity t ename key assigns =
  let decl = Semantic.find_entity_exn t.schema ename in
  match find_entity t decl.ename key with
  | None -> Error Status.Not_found
  | Some _ ->
      let bad =
        List.find_opt (fun (f, _) -> not (Field.mem decl.fields f)) assigns
      in
      (match bad with
      | Some (f, _) ->
          Error (Status.Invalid_request (Fmt.str "unknown field %s.%s" decl.ename f))
      | None ->
          Counters.record_write t.counters;
          let apply row =
            if keys_equal (key_of decl row) key then
              List.fold_left (fun row (f, v) -> Row.set row f v) row assigns
            else row
          in
          Ok (set_extent t decl.ename (List.map apply (extent t decl.ename))))

let validate t =
  let problems = ref [] in
  let note fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  (* Keys unique + not-null fields. *)
  List.iter
    (fun (e : Semantic.entity) ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun row ->
          let key = key_of e row in
          if List.exists Value.is_null key then
            note "%s: null key in %a" e.ename Row.pp row;
          let repr = String.concat "|" (List.map Value.show key) in
          if Hashtbl.mem seen repr then note "%s: duplicate key %s" e.ename repr
          else Hashtbl.add seen repr ();
          List.iter
            (fun f ->
              if Value.is_null (Option.value (Row.get row f) ~default:Value.Null)
              then note "%s.%s is null" e.ename f)
            (not_null_fields t e))
        (extent t e.ename))
    t.schema.Semantic.entities;
  (* Link endpoints exist; cardinality respected. *)
  List.iter
    (fun (a : Semantic.assoc) ->
      let ls = link_set t a.aname in
      List.iter
        (fun l ->
          if find_entity t a.left l.lkey = None then
            note "%s: dangling left endpoint" a.aname;
          if find_entity t a.right l.rkey = None then
            note "%s: dangling right endpoint" a.aname)
        ls;
      if a.card = Semantic.One_to_many then begin
        let seen = Hashtbl.create 16 in
        List.iter
          (fun l ->
            let repr = String.concat "|" (List.map Value.show l.rkey) in
            if Hashtbl.mem seen repr then
              note "%s: right instance %s has two left partners" a.aname repr
            else Hashtbl.add seen repr ())
          ls
      end;
      match limit_of t a.aname with
      | None -> ()
      | Some n ->
          let counts = Hashtbl.create 16 in
          List.iter
            (fun l ->
              let repr = String.concat "|" (List.map Value.show l.lkey) in
              Hashtbl.replace counts repr
                (1 + Option.value (Hashtbl.find_opt counts repr) ~default:0))
            ls;
          Hashtbl.iter
            (fun repr c ->
              if c > n then
                note "%s: left %s participates %d times (limit %d)" a.aname repr
                  c n)
            counts)
    t.schema.Semantic.assocs;
  (* Totality. *)
  List.iter
    (function
      | Semantic.Total_left aname ->
          let a = Semantic.find_assoc_exn t.schema aname in
          let le = Semantic.find_entity_exn t.schema a.left in
          List.iter
            (fun row ->
              let key = key_of le row in
              if not (List.exists (fun l -> keys_equal l.lkey key) (link_set t a.aname))
              then note "%s: %s %a has no partner" a.aname a.left Row.pp row)
            (extent t a.left)
      | Semantic.Total_right aname ->
          let a = Semantic.find_assoc_exn t.schema aname in
          let re = Semantic.find_entity_exn t.schema a.right in
          List.iter
            (fun row ->
              let key = key_of re row in
              if not (List.exists (fun l -> keys_equal l.rkey key) (link_set t a.aname))
              then note "%s: %s %a has no partner" a.aname a.right Row.pp row)
            (extent t a.right)
      | Semantic.Participation_limit _ | Semantic.Field_not_null _ -> ())
    t.schema.Semantic.constraints;
  List.rev !problems

let partners_of_left t aname lkey =
  let a = Semantic.find_assoc_exn t.schema aname in
  List.filter_map
    (fun l ->
      if keys_equal l.lkey lkey then
        Option.map (fun row -> (l.attrs, row)) (find_entity t a.right l.rkey)
      else None)
    (link_set t a.aname)

let partners_of_right t aname rkey =
  let a = Semantic.find_assoc_exn t.schema aname in
  List.filter_map
    (fun l ->
      if keys_equal l.rkey rkey then
        Option.map (fun row -> (l.attrs, row)) (find_entity t a.left l.lkey)
      else None)
    (link_set t a.aname)

let equal_contents a b =
  (* Field order is presentation, not content: canonicalise rows by
     sorting their bindings before comparing extents. *)
  let canon_row r = List.sort compare (Row.to_list r) in
  let sorted_extent t n =
    List.sort compare (List.map canon_row (rows_silent t n))
  in
  let link_key l = (l.lkey, l.rkey, Row.to_list l.attrs) in
  let sorted_links t n =
    List.sort compare (List.map link_key (links_silent t n))
  in
  List.for_all
    (fun (n, _) ->
      List.length (sorted_extent a n) = List.length (sorted_extent b n)
      && List.for_all2
           (fun r1 r2 ->
             List.length r1 = List.length r2
             && List.for_all2
                  (fun (f1, v1) (f2, v2) ->
                    String.equal f1 f2 && Value.equal v1 v2)
                  r1 r2)
           (sorted_extent a n) (sorted_extent b n))
    a.extents
  && List.for_all (fun (n, _) -> sorted_links a n = sorted_links b n) a.link_sets
  && List.length a.extents = List.length b.extents
  && List.length a.link_sets = List.length b.link_sets
  && List.for_all
       (fun (n, rows) -> List.length rows = List.length (rows_silent b n))
       a.extents

let total_instances t =
  List.fold_left (fun acc (_, rows) -> acc + List.length rows) 0 t.extents
  + List.fold_left (fun acc (_, ls) -> acc + List.length ls) 0 t.link_sets

let pp ppf t =
  List.iter
    (fun (n, rows) ->
      Fmt.pf ppf "@[<v2>%s:@ %a@]@." n (Fmt.list Row.pp) rows)
    t.extents;
  List.iter
    (fun (n, ls) ->
      Fmt.pf ppf "@[<v2>%s:@ %a@]@." n
        (Fmt.list (fun ppf l ->
             Fmt.pf ppf "%a -- %a %a"
               Fmt.(list ~sep:(any ",") Value.pp) l.lkey
               Fmt.(list ~sep:(any ",") Value.pp) l.rkey
               Row.pp l.attrs))
        ls)
    t.link_sets
