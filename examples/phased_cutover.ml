(* Phased-coexistence cutover, twice over.

   First a clean conversion (the Figure 4.2 -> 4.4 DEPT interposition):
   the service shadows every request on the converted system, sees zero
   divergence, and walks the ladder shadow -> canary -> cutover.

   Then a conversion that loses data (§5.2's extension restriction,
   dropping employees aged 45 and over): shadow comparison catches the
   divergences online and the controller rolls the canary back instead
   of cutting over. *)

open Ccv_common
open Ccv_transform
open Ccv_convert
open Ccv_serve
module W = Ccv_workload

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let restrict_op =
  Schema_change.Restrict_extension
    { entity = W.Company.emp;
      qual = Cond.Cmp (Cond.Ge, Cond.Field "AGE", Cond.Const (Value.Int 45));
    }

let req ops =
  { Supervisor.source_schema = W.Company.schema;
    source_model = Mapping.Net;
    ops;
    target_model = Mapping.Net;
  }

let serve ~title ~cutover ops =
  Printf.printf "=== %s ===\n\n" title;
  let sample = W.Company.instance () in
  let reqs = Request.stream ~seed:2026 W.Company.schema ~sample ~n:64 () in
  let config = { Pool.default_config with shards = 4; batch = 8 } in
  match Pool.run ~config ~cutover (req ops) sample reqs with
  | Error e -> Printf.printf "service failed to start: %s\n\n" e
  | Ok r -> Printf.printf "%s\n" (Pool.render r)

let () =
  serve ~title:"clean conversion: DEPT interposition reaches cutover"
    ~cutover:
      { Cutover.default_config with
        promote_after = 12;
        min_observations = 6;
      }
    [ interpose_op ];
  serve
    ~title:
      "lossy conversion: AGE >= 45 restriction diverges and rolls back"
    ~cutover:
      { Cutover.default_config with
        initial = Cutover.Canary 0.25;
        window = 8;
        min_observations = 4;
        max_divergence_rate = 0.2;
        promote_after = 1000;
      }
    [ restrict_op ]
