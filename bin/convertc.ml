(* convertc — the conversion system as a command-line tool.

   Takes a Maryland DDL schema file, a program file in the FIND/DISPLAY
   syntax, and a restructuring description; prints the converted
   program and the supervisor's issue log.

   Restructuring syntax (one operator per --op, applied in order):

     rename-entity OLD NEW
     rename-field ENTITY OLD NEW
     rename-assoc OLD NEW
     add-field ENTITY FIELD (str|int)
     drop-field ENTITY FIELD
     interpose THROUGH NEW-ENTITY GROUP-FIELD LEFT-ASSOC RIGHT-ASSOC
     widen ASSOC
     restrict ENTITY FIELD VALUE   (drop instances where FIELD = VALUE)

   Example:

     convertc --schema fig43.ddl --program list-sales.prog \
       --op "interpose DIV-EMP DEPT DEPT-NAME DIV-DEPT DEPT-EMP" *)

open Cmdliner
open Ccv_common
open Ccv_abstract
open Ccv_transform
open Ccv_convert

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_op s =
  match String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "") with
  | [ "rename-entity"; a; b ] ->
      Ok (Schema_change.Rename_entity { from_ = a; to_ = b })
  | [ "rename-field"; e; a; b ] ->
      Ok (Schema_change.Rename_field { entity = e; from_ = a; to_ = b })
  | [ "rename-assoc"; a; b ] ->
      Ok (Schema_change.Rename_assoc { from_ = a; to_ = b })
  | [ "add-field"; e; f; ty ] ->
      let ty, default =
        match String.lowercase_ascii ty with
        | "int" -> (Value.Tint, Value.Int 0)
        | _ -> (Value.Tstr, Value.Str "")
      in
      Ok (Schema_change.Add_field { entity = e; field = Field.make f ty; default })
  | [ "drop-field"; e; f ] ->
      Ok (Schema_change.Drop_field { entity = e; field = f })
  | [ "interpose"; through; n; g; la; ra ] ->
      Ok
        (Schema_change.Interpose
           { through; new_entity = n; group_by = [ g ]; left_assoc = la;
             right_assoc = ra })
  | [ "widen"; a ] -> Ok (Schema_change.Widen_cardinality { assoc = a })
  | [ "restrict"; e; f; v ] ->
      let v = Option.value (Value.of_literal v) ~default:(Value.Str v) in
      Ok
        (Schema_change.Restrict_extension
           { entity = e; qual = Cond.eq_field_const f v })
  | _ -> Error (Fmt.str "cannot parse operator %S" s)

let run schema_path program_path ops_raw verbose =
  let ddl = Ccv_frontend.Ddl.parse (read_file schema_path) in
  let source_schema = Ccv_frontend.Ddl.to_semantic ddl in
  let aprog, notes =
    Ccv_frontend.Dml_parse.parse_program ddl (read_file program_path)
  in
  List.iter (Printf.printf "note: %s\n") notes;
  let ops =
    List.map
      (fun s ->
        match parse_op s with Ok op -> op | Error e -> failwith e)
      ops_raw
  in
  (* Build the concrete CODASYL source from the parsed program, then
     run the full pipeline. *)
  let source_mapping = Supervisor.mapping_for Mapping.Net source_schema in
  let source =
    match Generator.generate source_mapping aprog with
    | Ok g -> g.Generator.program
    | Error e -> failwith ("source program not realizable: " ^ e)
  in
  if verbose then
    Printf.printf "--- source (CODASYL) ---\n%s\n"
      (Fmt.str "%a" Engines.pp_program source);
  let req =
    { Supervisor.source_schema;
      source_model = Mapping.Net;
      ops;
      target_model = Mapping.Net;
    }
  in
  match Supervisor.convert_program req source with
  | Error (stage, reason) ->
      Printf.printf "conversion failed at %s: %s\n" stage reason;
      exit 1
  | Ok report ->
      Printf.printf "--- classification ---\n";
      List.iter
        (fun (op, cls) ->
          Printf.printf "%s  [%s]\n"
            (Schema_change.show_op op)
            (Schema_change.show_class cls))
        report.Supervisor.classification;
      Printf.printf "\n--- converted access paths ---\n";
      List.iter
        (fun q ->
          Printf.printf "%s\n"
            (Ccv_frontend.Dml_parse.find_of_query
               ~target:(Apattern.result_of q) q))
        (Aprog.queries report.Supervisor.optimized);
      Printf.printf "\n--- converted program (CODASYL) ---\n%s\n"
        (Fmt.str "%a" Engines.pp_program report.Supervisor.target_program);
      if report.Supervisor.issues <> [] then begin
        Printf.printf "--- issues for the conversion analyst ---\n";
        List.iter
          (fun i -> Printf.printf "%s\n" (Fmt.str "%a" Supervisor.pp_issue i))
          report.Supervisor.issues
      end;
      if verbose && report.Supervisor.optimizer_log <> [] then begin
        Printf.printf "--- optimizer ---\n";
        List.iter (Printf.printf "%s\n") report.Supervisor.optimizer_log
      end

(* ------------------------------------------------------------------ *)
(* analyze: preflight static analysis — verdicts, depth, lints and
   inferred constraints without executing any rewrite                  *)

let explain_plans ?stats schema aprog =
  List.iteri
    (fun i q ->
      let plan = Ccv_plan.Plan.of_query ?stats schema q in
      Printf.printf "query %d: %s\n%s\n" (i + 1)
        (Ccv_analysis.Depth.render_path q)
        (Ccv_plan.Plan.explain_costs ?stats schema plan))
    (Aprog.queries aprog)

let analyze_file schema_path program_path ops_raw cap json explain =
  let ddl = Ccv_frontend.Ddl.parse (read_file schema_path) in
  let source_schema = Ccv_frontend.Ddl.to_semantic ddl in
  let aprog, notes =
    Ccv_frontend.Dml_parse.parse_program ddl (read_file program_path)
  in
  let ops =
    List.map
      (fun s -> match parse_op s with Ok op -> op | Error e -> failwith e)
      ops_raw
  in
  let report = Ccv_analysis.Report.analyze ~cap ~ops source_schema aprog in
  if json then print_endline (Ccv_analysis.Report.to_json report)
  else begin
    List.iter (Printf.printf "note: %s\n") notes;
    Fmt.pr "%a@." Ccv_analysis.Report.pp report;
    if explain then begin
      Printf.printf
        "--- chosen plans (per-step cost estimates, nominal statistics) ---\n";
      explain_plans source_schema aprog
    end
  end;
  if
    Ccv_analysis.Report.refused report
    || Ccv_analysis.Report.errors report <> []
  then exit 1

(* Corpus mode: generated programs x restructuring chains over both
   built-in schemas, checking the static verdict against the rewrite
   engine's actual outcome on every (program, op) pair.  A false
   accept (preflight says convertible, engine refuses) exits 2; a
   false refusal exits 3.  This is the CI lint gate. *)

let analyze_corpus n seed cap json =
  let module W = Ccv_workload in
  let module A = Ccv_analysis in
  let interpose_op =
    Schema_change.Interpose
      { through = W.Company.div_emp;
        new_entity = W.Company.dept;
        group_by = [ "DEPT-NAME" ];
        left_assoc = W.Company.div_dept;
        right_assoc = W.Company.dept_emp;
      }
  in
  let collapse_op =
    Schema_change.Collapse
      { left_assoc = W.Company.div_dept;
        right_assoc = W.Company.dept_emp;
        removed_entity = W.Company.dept;
        restored_assoc = W.Company.div_emp;
      }
  in
  let company_chains =
    [ [ Schema_change.Rename_entity { from_ = "EMP"; to_ = "EMPLOYEE" } ];
      [ Schema_change.Rename_field
          { entity = "EMP"; from_ = "AGE"; to_ = "EMP-AGE" };
      ];
      [ Schema_change.Add_field
          { entity = "EMP";
            field = Field.make "SALARY" Value.Tint;
            default = Value.Int 0;
          };
      ];
      [ Schema_change.Drop_field { entity = "EMP"; field = "AGE" } ];
      [ Schema_change.Drop_field { entity = "EMP"; field = "DEPT-NAME" } ];
      [ Schema_change.Add_constraint
          (Ccv_model.Semantic.Field_not_null { entity = "EMP"; field = "DEPT-NAME" });
      ];
      [ Schema_change.Drop_constraint (Ccv_model.Semantic.Total_right W.Company.div_emp);
        Schema_change.Widen_cardinality { assoc = W.Company.div_emp };
      ];
      [ interpose_op ];
      [ interpose_op; collapse_op ];
      [ Schema_change.Restrict_extension
          { entity = "EMP"; qual = Cond.eq_field_const "AGE" (Value.Int 30) };
      ];
    ]
  in
  let school_chains =
    [ [ Schema_change.Rename_entity
          { from_ = W.School.course; to_ = "KURS" };
      ];
      [ Schema_change.Rename_assoc
          { from_ = W.School.offering; to_ = "TEACHING" };
      ];
      [ Schema_change.Drop_field
          { entity = W.School.course; field = "CNAME" };
      ];
      [ Schema_change.Add_field
          { entity = W.School.semester;
            field = Field.make "TERM" Value.Tstr;
            default = Value.Str "";
          };
      ];
      [ Schema_change.Restrict_extension
          { entity = W.School.semester;
            qual = Cond.eq_field_const "YEAR" (Value.Int 1970);
          };
      ];
    ]
  in
  let pairs = ref 0 and convertible = ref 0 and refused = ref 0 in
  let false_accepts = ref 0 and false_refusals = ref 0 and deep = ref 0 in
  let refusal_diags = ref [] and lint_diags = ref [] in
  let run_schema name schema sample chains =
    let programs = W.Generator.batch ~seed schema ~sample ~n () in
    List.iter
      (fun ((_fam : W.Generator.family), p) ->
        (match A.Depth.check ~cap p with Ok () -> () | Error _ -> incr deep);
        lint_diags := List.rev_append (A.Lint.all schema p) !lint_diags;
        List.iter
          (fun chain ->
            let rec go schema p = function
              | [] -> ()
              | op :: rest -> (
                  incr pairs;
                  let predicted = Rules.preflight_op schema op p in
                  let actual = Rules.convert_d schema op p in
                  (match (predicted, actual) with
                  | None, Ok _ -> incr convertible
                  | Some d, Error _ ->
                      incr refused;
                      refusal_diags := d :: !refusal_diags
                  | None, Error d ->
                      incr false_accepts;
                      Printf.eprintf
                        "FALSE ACCEPT (%s, %s, %s): engine refused: %s\n" name
                        p.Aprog.name (Schema_change.show_op op)
                        (Diagnostic.to_string d)
                  | Some d, Ok _ ->
                      incr false_refusals;
                      Printf.eprintf
                        "FALSE REFUSAL (%s, %s, %s): predicted: %s\n" name
                        p.Aprog.name (Schema_change.show_op op)
                        (Diagnostic.to_string d));
                  match actual with
                  | Error _ -> ()
                  | Ok (p', _) -> (
                      match Schema_change.apply schema op with
                      | Error _ -> ()
                      | Ok schema' -> go schema' p' rest))
            in
            go schema p chain)
          chains)
      programs
  in
  run_schema "company" W.Company.schema (W.Company.instance ()) company_chains;
  run_schema "school" W.School.schema (W.School.instance ()) school_chains;
  let code_counts ds = Diagnostic.count_codes (List.rev ds) in
  if json then begin
    let counts_json cs =
      String.concat ","
        (List.map
           (fun (c, k) -> Printf.sprintf "{\"code\":\"%s\",\"count\":%d}" c k)
           cs)
    in
    Printf.printf
      "{\"programs\":%d,\"pairs\":%d,\"convertible\":%d,\"refused\":%d,\"false_accepts\":%d,\"false_refusals\":%d,\"over_depth_cap\":%d,\"refusal_codes\":[%s],\"lint_codes\":[%s]}\n"
      (2 * n) !pairs !convertible !refused !false_accepts !false_refusals !deep
      (counts_json (code_counts !refusal_diags))
      (counts_json (code_counts !lint_diags))
  end
  else begin
    Printf.printf
      "analyzed %d (program, op) pairs over %d generated programs\n" !pairs
      (2 * n);
    Printf.printf
      "  convertible %d   refused %d   false-accepts %d   false-refusals %d\n"
      !convertible !refused !false_accepts !false_refusals;
    Printf.printf "  programs over the %d-hop migration cap: %d\n" cap !deep;
    let print_counts label cs =
      if cs <> [] then begin
        Printf.printf "  %s:" label;
        List.iter (fun (c, k) -> Printf.printf " %s x%d" c k) cs;
        print_newline ()
      end
    in
    print_counts "refusal codes" (code_counts !refusal_diags);
    print_counts "lint codes" (code_counts !lint_diags)
  end;
  if !false_accepts > 0 then exit 2;
  if !false_refusals > 0 then exit 3

let analyze_run schema program ops_raw cap corpus seed json explain =
  match corpus with
  | Some n -> analyze_corpus n seed cap json
  | None -> (
      match (schema, program) with
      | Some s, Some p -> analyze_file s p ops_raw cap json explain
      | _ ->
          prerr_endline
            "analyze: --schema and --program are required unless --corpus N \
             is given";
          exit 64)

(* ------------------------------------------------------------------ *)
(* serve: drive a workload through the phased-coexistence service      *)

let serve_run ops_raw requests domains shards batch seed canary window
    min_obs threshold promote strict no_plan_cache fail_request epoch_serving
    epoch_batch epoch_lag steal split_threshold live_migration backfill_batch
    backfill_lag skew cost_based stats_every drift_threshold explain =
  let module S = Ccv_serve in
  let module W = Ccv_workload in
  let ops =
    List.map
      (fun s ->
        match parse_op s with Ok op -> op | Error e -> failwith e)
      ops_raw
  in
  let sample = W.Company.instance () in
  let reqs =
    S.Request.stream ~seed W.Company.schema ~sample ~n:requests ~skew ()
  in
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops;
      target_model = Mapping.Net;
    }
  in
  if explain then begin
    (* One plan per distinct program in the stream, costed under the
       statistics of the instance the shards will serve — the same
       snapshot a cost-based shard starts from. *)
    let stats =
      if cost_based then Some (Ccv_plan.Stats.of_sdb sample) else None
    in
    (match stats with
    | Some st ->
        Printf.printf "--- chosen plans (instance statistics %s) ---\n"
          (Ccv_plan.Stats.fingerprint st)
    | None ->
        Printf.printf
          "--- chosen plans (heuristic; nominal cost estimates) ---\n");
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (r : S.Request.t) ->
        let name = r.S.Request.aprog.Aprog.name in
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.add seen name ();
          Printf.printf "[%s]\n" name;
          explain_plans ?stats W.Company.schema r.S.Request.aprog
        end)
      reqs
  end;
  let cutover =
    { S.Cutover.canary_fraction = canary;
      window;
      min_observations = min_obs;
      max_divergence_rate = threshold;
      promote_after = promote;
      initial = S.Cutover.Shadow;
    }
  in
  let config =
    { S.Pool.domains;
      shards;
      batch;
      canary_seed = seed;
      tolerate_reordering = not strict;
      use_plan_cache = not no_plan_cache;
      fail_request;
      epoch_serving;
      epoch_batch;
      epoch_lag;
      steal;
      split_threshold;
      live_migration;
      backfill_batch;
      backfill_lag;
      fail_backfill = None;
      fingerprint_replicas = false;
      cost_based_plans = cost_based;
      stats_every;
      drift_threshold;
    }
  in
  match S.Pool.run ~config ~cutover req sample reqs with
  | Error e ->
      Printf.printf "service failed to start: %s\n" e;
      exit 1
  | Ok r ->
      print_string (S.Pool.render r);
      if r.S.Pool.status = S.Cutover.Aborted then exit 2

let schema_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "schema" ] ~docv:"FILE" ~doc:"Maryland DDL schema (Figure 4.3 syntax)")

let program_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "program" ] ~docv:"FILE" ~doc:"program in FIND/DISPLAY syntax")

let ops_arg =
  Arg.(
    value & opt_all string []
    & info [ "op" ] ~docv:"OP" ~doc:"restructuring operator (repeatable)")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print intermediate forms")

let analyze_cmd =
  let doc =
    "static conversion-safety analysis: predict refusal verdicts, check \
     navigation depth against the live-migration cap, lint access paths \
     and infer implied constraints — without rewriting or executing the \
     program"
  in
  let schema =
    Arg.(
      value
      & opt (some file) None
      & info [ "schema" ] ~docv:"FILE" ~doc:"Maryland DDL schema")
  in
  let program =
    Arg.(
      value
      & opt (some file) None
      & info [ "program" ] ~docv:"FILE" ~doc:"program in FIND/DISPLAY syntax")
  in
  let cap =
    Arg.(
      value
      & opt int Ccv_analysis.Depth.default_cap
      & info [ "cap" ] ~docv:"N" ~doc:"navigation-depth admission cap (hops)")
  in
  let corpus =
    Arg.(
      value
      & opt (some int) None
      & info [ "corpus" ] ~docv:"N"
          ~doc:
            "differential mode: N generated programs per built-in schema, \
             every (program, op) static verdict checked against the rewrite \
             engine (exit 2 on a false accept, 3 on a false refusal)")
  in
  let seed =
    Arg.(
      value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"corpus seed")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"machine-readable output")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "print each query's chosen plan with per-step row and cost \
             estimates (nominal statistics — no instance is available at \
             analysis time)")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const analyze_run $ schema $ program $ ops_arg $ cap $ corpus $ seed
      $ json $ explain)

let convert_term =
  Term.(const run $ schema_arg $ program_arg $ ops_arg $ verbose_arg)

let convert_cmd =
  let doc = "convert a program against a restructuring (default command)" in
  Cmd.v (Cmd.info "convert" ~doc) convert_term

let serve_cmd =
  let doc =
    "run the built-in company workload through the phased-coexistence \
     service: every request shadows on the converted system, divergence \
     is watched online, and the cutover ladder \
     (shadow -> canary -> cutover) promotes or rolls back automatically"
  in
  let requests =
    Arg.(value & opt int 96 & info [ "requests" ] ~docv:"N" ~doc:"workload size")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D" ~doc:"worker domains")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"S" ~doc:"replica shards")
  in
  let batch =
    Arg.(value & opt int 16 & info [ "batch" ] ~docv:"B" ~doc:"requests per tick")
  in
  let seed =
    Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")
  in
  let canary =
    Arg.(
      value & opt float 0.25
      & info [ "canary" ] ~docv:"FRAC" ~doc:"canary traffic fraction")
  in
  let window =
    Arg.(
      value & opt int 32
      & info [ "window" ] ~docv:"W" ~doc:"divergence sliding-window size")
  in
  let min_obs =
    Arg.(
      value & opt int 8
      & info [ "min-observations" ] ~docv:"M"
          ~doc:"observations before the window can trigger rollback")
  in
  let threshold =
    Arg.(
      value & opt float 0.05
      & info [ "threshold" ] ~docv:"RATE"
          ~doc:"max divergence rate before rollback")
  in
  let promote =
    Arg.(
      value & opt int 24
      & info [ "promote-after" ] ~docv:"K"
          ~doc:"consecutive clean shadows before promotion")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"demand strict trace equality (reject order-only equivalence)")
  in
  let no_plan_cache =
    Arg.(
      value & flag
      & info [ "no-plan-cache" ]
          ~doc:"disable the per-shard compiled plan cache (re-convert and \
                re-interpret every request)")
  in
  let fail_request =
    Arg.(
      value & opt (some int) None
      & info [ "fail-request" ] ~docv:"ID"
          ~doc:"fault injection: crash the worker serving this request id \
                (exercises worker-failure propagation)")
  in
  let epoch_serving =
    Arg.(
      value & opt bool true
      & info [ "epoch-serving" ] ~docv:"BOOL"
          ~doc:"barrier-free snapshot serving (default); $(b,false) falls \
                back to the tick-barrier loop")
  in
  let epoch_batch =
    Arg.(
      value & opt int 16
      & info [ "epoch-batch" ] ~docv:"B"
          ~doc:"requests per shard per epoch row (epoch serving)")
  in
  let epoch_lag =
    Arg.(
      value & opt int 2
      & info [ "epoch-lag" ] ~docv:"L"
          ~doc:"rows the phase plan is published ahead of the controller \
                (epoch-serving pipeline depth)")
  in
  let steal =
    Arg.(
      value & opt bool true
      & info [ "steal" ] ~docv:"BOOL"
          ~doc:"epoch serving: schedule epoch rows through the work-stealing \
                deque — any idle worker claims the next ready row regardless \
                of shard (default); $(b,false) pins shard s to worker s mod \
                domains.  Served output is bit-identical either way")
  in
  let split_threshold =
    Arg.(
      value & opt int 0
      & info [ "split-threshold" ] ~docv:"N"
          ~doc:"with $(b,--steal), split epoch rows longer than N requests \
                into sub-rows that successive workers execute back-to-back \
                (0 = never split)")
  in
  let live_migration =
    Arg.(
      value & flag
      & info [ "live-migration" ]
          ~doc:"serve while migrating: start with empty target replicas and \
                fill them online by per-request fault-in, background \
                backfill and dual-applied writes, instead of bulk data \
                translation up front.  The first request is served \
                immediately; promotion to canary/cutover waits for the \
                backfill convergence gate")
  in
  let backfill_batch =
    Arg.(
      value & opt int 64
      & info [ "backfill-batch" ] ~docv:"N"
          ~doc:"live migration: pending records drained per shard per \
                logical row")
  in
  let backfill_lag =
    Arg.(
      value & opt int 1
      & info [ "backfill-lag" ] ~docv:"L"
          ~doc:"live migration: logical rows served before backfill starts")
  in
  let skew =
    Arg.(
      value & opt float 0.
      & info [ "skew" ] ~docv:"THETA"
          ~doc:"Zipf exponent for key popularity in the generated workload \
                (0 = uniform)")
  in
  let cost_based =
    Arg.(
      value & flag
      & info [ "cost-based" ]
          ~doc:"cost-based plan selection: each shard snapshots the \
                cardinality statistics of its replica and orders equality \
                conjuncts by observed selectivity; cached plans carry the \
                snapshot fingerprint")
  in
  let stats_every =
    Arg.(
      value & opt int 0
      & info [ "stats-every" ] ~docv:"N"
          ~doc:"with $(b,--cost-based), re-observe each shard's live target \
                replica every N requests and flush its plan cache when \
                counts drift past $(b,--drift-threshold) (0 = never)")
  in
  let drift_threshold =
    Arg.(
      value & opt float 0.5
      & info [ "drift-threshold" ] ~docv:"FRAC"
          ~doc:"largest tolerated relative cardinality change before cached \
                plans are recosted")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "before serving, print each distinct workload program's chosen \
             plan with per-step cost estimates (under the instance \
             statistics when $(b,--cost-based) is set)")
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve_run $ ops_arg $ requests $ domains $ shards $ batch $ seed
      $ canary $ window $ min_obs $ threshold $ promote $ strict
      $ no_plan_cache $ fail_request $ epoch_serving $ epoch_batch
      $ epoch_lag $ steal $ split_threshold $ live_migration
      $ backfill_batch $ backfill_lag $ skew $ cost_based $ stats_every
      $ drift_threshold $ explain)

let cmd =
  let doc =
    "convert a database program to match a schema restructuring (CODASYL \
     Database Program Conversion framework, 1979)"
  in
  Cmd.group ~default:convert_term
    (Cmd.info "convertc" ~version:"1.0" ~doc)
    [ convert_cmd; analyze_cmd; serve_cmd ]

let () = exit (Cmd.eval cmd)
